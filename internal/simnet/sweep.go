package simnet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"commsched/internal/obs"
	"commsched/internal/par"
	"commsched/internal/routing"
	"commsched/internal/runstate"
	"commsched/internal/topology"
	"commsched/internal/traffic"
)

// SweepPoint is one operating point of a load sweep: the paper's
// simulation points S1…S9 between low load and deep saturation.
type SweepPoint struct {
	// Index is the 1-based point number (S1, S2, …).
	Index int
	// Rate is the per-host injection rate in flits/cycle.
	Rate float64
	// Metrics is the run's measurement.
	Metrics Metrics
	// Incomplete marks a point whose run failed permanently but was
	// salvaged under the par error budget: Metrics is zero and must not
	// be interpreted. Complete runs never set it.
	Incomplete bool
}

// Sweep simulates the network at each injection rate and returns one
// point per rate. Each run is independent and deterministic (the config
// seed is combined with the point index), so the points execute in
// parallel across GOMAXPROCS workers; results are identical to a
// sequential sweep.
//
// Concurrency caveat: traffic.Pattern implementations in this module only
// read immutable state and draw from the per-simulator rng passed to
// Destination, so one pattern value is safely shared across the parallel
// runs.
//
// A nil ctx means Background; a cancellation stops all in-flight runs
// promptly and surfaces the wrapped ctx.Err(). A panicking worker is
// recovered into a returned error instead of crashing the process.
func Sweep(ctx context.Context, net *topology.Network, rt *routing.UpDown, pattern traffic.Pattern, cfg Config, rates []float64) ([]SweepPoint, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("simnet: empty rate list")
	}
	sp, ctx := obs.StartSpanCtx(ctx, "simnet.sweep", obs.F("points", len(rates)), obs.F("max_rate", rates[len(rates)-1]))
	// Checkpointing needs a scope identifying the (system, mapping) this
	// sweep belongs to; without one a point cannot be named durably and
	// the sweep runs un-checkpointed.
	scope := ""
	if runstate.Enabled() {
		scope = runstate.ScopeFrom(ctx)
	}
	points := make([]SweepPoint, len(rates))
	var done atomic.Int64
	unitErrs, err := par.ForEachPartial(ctx, "simnet.sweep", len(rates), func(ctx context.Context, i int) error {
		c := cfg
		c.InjectionRate = rates[i]
		c.Seed = cfg.Seed*1000003 + int64(i)
		key := ""
		if scope != "" {
			// The key embeds the full per-point config (rate, seed, and
			// every simulation knob), so a changed configuration can never
			// resurrect a stale point.
			key = fmt.Sprintf("sweep/%s/p%d/%s", scope, i, runstate.KeyHash(c))
			var m Metrics
			if runstate.Lookup(key, &m) {
				points[i] = SweepPoint{Index: i + 1, Rate: rates[i], Metrics: m}
				if obs.Enabled() {
					obs.Progress("simnet.sweep", done.Add(1), int64(len(rates)))
				}
				return nil
			}
		}
		sim, err := New(net, rt, pattern, c)
		if err != nil {
			return err
		}
		m, err := sim.RunContext(ctx)
		if err != nil {
			return err
		}
		points[i] = SweepPoint{Index: i + 1, Rate: rates[i], Metrics: m}
		if key != "" {
			runstate.RecordCtx(ctx, key, m)
		}
		if obs.Enabled() {
			obs.EventCtx(ctx, "simnet.sweep_point",
				obs.F("point", i+1),
				obs.F("rate", rates[i]),
				obs.F("accepted_traffic", m.AcceptedTraffic),
				obs.F("avg_latency", m.AvgLatency),
				obs.F("saturated", m.Saturated()))
			obs.Progress("simnet.sweep", done.Add(1), int64(len(rates)))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Units that failed permanently but stayed within the error budget
	// come back as tagged-incomplete points instead of failing the sweep.
	for _, ue := range unitErrs {
		points[ue.Index] = SweepPoint{Index: ue.Index + 1, Rate: rates[ue.Index], Incomplete: true}
	}
	sp.End(obs.F("throughput", Throughput(points)), obs.F("incomplete", len(unitErrs)))
	return points, nil
}

// LinearRates returns n evenly spaced rates in (0, max] — the paper's
// S1…Sn ladder from low traffic to (past) saturation.
func LinearRates(n int, max float64) []float64 {
	rates := make([]float64, n)
	for i := range rates {
		rates[i] = max * float64(i+1) / float64(n)
	}
	return rates
}

// Throughput returns the maximum accepted traffic over the sweep — the
// paper's throughput definition (maximum amount of information delivered
// per time unit).
func Throughput(points []SweepPoint) float64 {
	max := 0.0
	for _, p := range points {
		if p.Metrics.AcceptedTraffic > max {
			max = p.Metrics.AcceptedTraffic
		}
	}
	return max
}

// SaturationPoint returns the first sweep point whose run saturated, or
// -1 when none did.
func SaturationPoint(points []SweepPoint) int {
	for i, p := range points {
		if p.Metrics.Saturated() {
			return i
		}
	}
	return -1
}

// ErrAlwaysSaturated reports that every FindSaturation probe down to the
// bisection tolerance saturated: the network cannot sustain even the
// lowest rate probed, so no non-saturated operating point was found.
var ErrAlwaysSaturated = errors.New("simnet: network saturated at every probed rate")

// FindSaturation locates the saturation injection rate by bisection in
// (0, maxRate]: the largest per-host rate at which the network still
// accepts (within the Saturated tolerance) everything offered. It returns
// the bracketing rate and the metrics of the last non-saturated run.
// When every probe down to the tolerance saturates, it returns rate 0,
// the metrics of the lowest-rate (still saturated) probe — so the caller
// can inspect Saturated() and the loss figures — and an error wrapping
// ErrAlwaysSaturated.
// Each probe is one full simulation, so tol trades precision for time; a
// nil ctx means Background and cancellation aborts between (and inside)
// probes.
func FindSaturation(ctx context.Context, net *topology.Network, rt *routing.UpDown, pattern traffic.Pattern, cfg Config, maxRate, tol float64) (float64, Metrics, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if maxRate <= 0 || maxRate > 1 {
		return 0, Metrics{}, fmt.Errorf("simnet: maxRate %v outside (0,1]", maxRate)
	}
	if tol <= 0 {
		tol = maxRate / 64
	}
	// Bisection halves (hi-lo) every probe, so the probe budget is known
	// up front — which makes the search a progress-trackable task.
	totalProbes := int64(1 + math.Ceil(math.Log2(maxRate/tol)))
	scope := ""
	if runstate.Enabled() {
		scope = runstate.ScopeFrom(ctx)
	}
	var probes int64
	probe := func(lo, hi, rate float64) (Metrics, error) {
		c := cfg
		c.InjectionRate = rate
		key := ""
		if scope != "" {
			// Bisection is deterministic, so a resumed search probes the
			// exact same rate sequence and replays from the store.
			key = fmt.Sprintf("sat/%s/%s", scope, runstate.KeyHash(c))
			var m Metrics
			if runstate.Lookup(key, &m) {
				return m, nil
			}
		}
		sim, err := New(net, rt, pattern, c)
		if err != nil {
			return Metrics{}, err
		}
		m, err := sim.RunContext(ctx)
		if err == nil && key != "" {
			runstate.RecordCtx(ctx, key, m)
		}
		if err == nil && obs.Enabled() {
			probes++
			obs.Event("simnet.saturation_probe",
				obs.F("rate", rate),
				obs.F("lo", lo),
				obs.F("hi", hi),
				obs.F("accepted_traffic", m.AcceptedTraffic),
				obs.F("saturated", m.Saturated()))
			obs.Progress("simnet.saturation", probes, totalProbes)
		}
		return m, err
	}
	lo, hi := 0.0, maxRate
	var best Metrics
	m, err := probe(lo, hi, maxRate)
	if err != nil {
		return 0, Metrics{}, err
	}
	if !m.Saturated() {
		return maxRate, m, nil // never saturates within the probe range
	}
	lastSaturated, found := m, false
	for hi-lo > tol {
		mid := (lo + hi) / 2
		m, err := probe(lo, hi, mid)
		if err != nil {
			return 0, Metrics{}, err
		}
		if m.Saturated() {
			hi = mid
			lastSaturated = m
		} else {
			lo, best, found = mid, m, true
		}
	}
	if !found {
		// lo never advanced: even the lowest probe saturated. Surface the
		// lowest-rate probe's metrics instead of a zero value.
		return 0, lastSaturated, fmt.Errorf("simnet: no non-saturated rate above tolerance %v: %w", tol, ErrAlwaysSaturated)
	}
	return lo, best, nil
}
