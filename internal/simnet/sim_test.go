package simnet

import (
	"math/rand"
	"testing"

	"commsched/internal/mapping"
	"commsched/internal/routing"
	"commsched/internal/topology"
	"commsched/internal/traffic"
)

// rig bundles a network, routing, and the paper's intra-cluster pattern
// for a given partition.
type rig struct {
	net     *topology.Network
	rt      *routing.UpDown
	pattern traffic.Pattern
}

func newRig(t *testing.T, switches, clusters int, topoSeed, mapSeed int64, random bool) rig {
	t.Helper()
	net, err := topology.RandomIrregular(switches, 3, rand.New(rand.NewSource(topoSeed)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := routing.NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	var p *mapping.Partition
	if random {
		p, err = mapping.Random(switches, clusters, rand.New(rand.NewSource(mapSeed)))
	} else {
		p, err = mapping.Balanced(switches, clusters)
	}
	if err != nil {
		t.Fatal(err)
	}
	pm, err := mapping.NewProcessMap(net, p)
	if err != nil {
		t.Fatal(err)
	}
	pat, err := traffic.NewIntraCluster(pm)
	if err != nil {
		t.Fatal(err)
	}
	return rig{net: net, rt: rt, pattern: pat}
}

func TestConfigValidation(t *testing.T) {
	r := newRig(t, 8, 4, 1, 1, false)
	bad := []Config{
		{InjectionRate: -0.1},
		{InjectionRate: 1.5},
		{VirtualChannels: -1},
		{BufferFlits: -1},
		{MessageFlits: -2},
		{MeasureCycles: -5},
		{RateScale: []float64{1}},             // wrong length
		{RateScale: negScale(r.net.Hosts())},  // negative entry
		{WarmupCycles: -1, MeasureCycles: 10}, // negative warmup
	}
	for i, cfg := range bad {
		if _, err := New(r.net, r.rt, r.pattern, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

func negScale(n int) []float64 {
	s := make([]float64, n)
	s[0] = -1
	return s
}

func TestZeroLoadDeliversNothing(t *testing.T) {
	r := newRig(t, 8, 4, 1, 1, false)
	sim, err := New(r.net, r.rt, r.pattern, Config{
		InjectionRate: 0, WarmupCycles: 10, MeasureCycles: 100, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.Run()
	if m.GeneratedMessages != 0 || m.AcceptedTraffic != 0 {
		t.Fatalf("zero load produced traffic: %s", m.String())
	}
	if m.Saturated() {
		t.Fatal("zero load reported saturated")
	}
}

func TestLowLoadDeliversEverything(t *testing.T) {
	r := newRig(t, 16, 4, 2, 0, false)
	sim, err := New(r.net, r.rt, r.pattern, Config{
		InjectionRate: 0.02, WarmupCycles: 2000, MeasureCycles: 8000, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.Run()
	if m.GeneratedMessages == 0 {
		t.Fatal("no messages generated at nonzero load")
	}
	if m.Saturated() {
		t.Fatalf("low load saturated: %s", m.String())
	}
	// Accepted ≈ offered at low load.
	if m.AcceptedTraffic < 0.9*m.OfferedTraffic {
		t.Fatalf("low-load accepted %.4f far below offered %.4f", m.AcceptedTraffic, m.OfferedTraffic)
	}
	if m.AvgLatency <= 0 {
		t.Fatalf("nonpositive latency: %v", m.AvgLatency)
	}
	// Network latency must be at least the message length (pipeline drain
	// of MessageFlits flits over at least one channel).
	if m.AvgLatency < float64(16) {
		t.Fatalf("latency %.1f below the %d-flit serialization bound", m.AvgLatency, 16)
	}
	if m.AvgTotalLatency < m.AvgLatency {
		t.Fatal("total latency below network latency")
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	r := newRig(t, 16, 4, 2, 0, false)
	cfg := Config{WarmupCycles: 1500, MeasureCycles: 6000, Seed: 3}
	points, err := Sweep(nil, r.net, r.rt, r.pattern, cfg, []float64{0.02, 0.30})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := points[0].Metrics, points[1].Metrics
	if hi.AvgLatency <= lo.AvgLatency {
		t.Fatalf("latency did not grow with load: %.1f → %.1f", lo.AvgLatency, hi.AvgLatency)
	}
}

func TestSaturationAtExtremeLoad(t *testing.T) {
	r := newRig(t, 16, 4, 2, 9, true)
	sim, err := New(r.net, r.rt, r.pattern, Config{
		InjectionRate: 0.9, WarmupCycles: 2000, MeasureCycles: 6000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.Run()
	if !m.Saturated() {
		t.Fatalf("0.9 flits/cycle/host did not saturate a degree-3 network: %s", m.String())
	}
	// Even saturated, the network keeps delivering.
	if m.AcceptedTraffic <= 0 {
		t.Fatal("saturated network delivered nothing")
	}
}

func TestFlitConservation(t *testing.T) {
	// Every generated flit is either delivered or still in flight: with a
	// long drain (rate 0 after a burst is not modeled here), check the
	// weaker invariant — delivered flits never exceed offered flits, and
	// message delivery counts are consistent.
	r := newRig(t, 12, 4, 3, 1, true)
	sim, err := New(r.net, r.rt, r.pattern, Config{
		InjectionRate: 0.2, WarmupCycles: 0, MeasureCycles: 5000, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.Run()
	if m.deliveredFlits > m.offeredFlits {
		t.Fatalf("delivered %d flits, offered only %d", m.deliveredFlits, m.offeredFlits)
	}
	if m.DeliveredMessages > m.GeneratedMessages {
		t.Fatalf("delivered %d messages, generated only %d", m.DeliveredMessages, m.GeneratedMessages)
	}
}

func TestMessagesArriveIntactAndInOrder(t *testing.T) {
	// Run a moderate load and then drain; every in-flight message must
	// complete (no wormhole deadlock), with exactly `size` flits delivered.
	r := newRig(t, 16, 4, 4, 2, true)
	cfg := Config{InjectionRate: 0.25, WarmupCycles: 0, MeasureCycles: 3000, Seed: 13}
	sim, err := New(r.net, r.rt, r.pattern, cfg.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	sim.measuring = true
	for c := 0; c < 3000; c++ {
		sim.step()
	}
	// Drain: stop injecting, keep switching.
	sim.cfg.InjectionRate = 0
	for c := 0; c < 60000; c++ {
		sim.step()
	}
	if got := sim.inflight(); got != 0 {
		t.Fatalf("%d flits still in flight after drain — possible deadlock", got)
	}
	if sim.metrics.deliveredFlits != sim.metrics.offeredFlits {
		t.Fatalf("delivered %d flits of %d offered after drain",
			sim.metrics.deliveredFlits, sim.metrics.offeredFlits)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	r := newRig(t, 12, 4, 5, 3, true)
	cfg := Config{InjectionRate: 0.2, WarmupCycles: 500, MeasureCycles: 2000, Seed: 21}
	run := func() Metrics {
		sim, err := New(r.net, r.rt, r.pattern, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	a, b := run(), run()
	if a.AcceptedTraffic != b.AcceptedTraffic || a.AvgLatency != b.AvgLatency ||
		a.GeneratedMessages != b.GeneratedMessages {
		t.Fatalf("same seed, different results:\n%s\n%s", a.String(), b.String())
	}
}

func TestRateScaleHonored(t *testing.T) {
	r := newRig(t, 8, 4, 6, 1, false)
	scale := make([]float64, r.net.Hosts())
	// Only the first switch's hosts inject.
	for _, h := range r.net.SwitchHosts(0) {
		scale[h] = 1
	}
	sim, err := New(r.net, r.rt, r.pattern, Config{
		InjectionRate: 0.3, RateScale: scale,
		WarmupCycles: 100, MeasureCycles: 4000, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.Run()
	if m.GeneratedMessages == 0 {
		t.Fatal("scaled hosts generated nothing")
	}
	// Offered traffic must be ≈ 1/8 of the unscaled value: 4 of 32 hosts.
	wantOffered := 0.3 * 4 / 8 // rate × activehosts / switches
	if m.OfferedTraffic > wantOffered*1.3 || m.OfferedTraffic < wantOffered*0.7 {
		t.Fatalf("offered %.4f, want ≈ %.4f", m.OfferedTraffic, wantOffered)
	}
}

func TestSameSwitchTrafficWorks(t *testing.T) {
	// A cluster that fits on a single switch exchanges messages without
	// touching any link.
	net, err := topology.RandomIrregular(8, 3, rand.New(rand.NewSource(9)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := routing.NewUpDown(net, -1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := mapping.Balanced(8, 8) // each switch its own cluster
	if err != nil {
		t.Fatal(err)
	}
	pm, err := mapping.NewProcessMap(net, p)
	if err != nil {
		t.Fatal(err)
	}
	pat, err := traffic.NewIntraCluster(pm)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(net, rt, pat, Config{
		InjectionRate: 0.3, WarmupCycles: 500, MeasureCycles: 3000, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.Run()
	if m.DeliveredMessages == 0 {
		t.Fatal("same-switch messages were not delivered")
	}
	if m.Saturated() {
		t.Fatalf("pure same-switch traffic saturated: %s", m.String())
	}
}

func TestSweepHelpers(t *testing.T) {
	rates := LinearRates(9, 0.45)
	if len(rates) != 9 || rates[8] < 0.45-1e-12 || rates[8] > 0.45+1e-12 {
		t.Fatalf("LinearRates wrong: %v", rates)
	}
	if rates[0] < 0.05-1e-12 || rates[0] > 0.05+1e-12 {
		t.Fatalf("first rate = %v, want 0.05", rates[0])
	}
	r := newRig(t, 8, 4, 7, 1, false)
	if _, err := Sweep(nil, r.net, r.rt, r.pattern, Config{}, nil); err == nil {
		t.Fatal("empty sweep accepted")
	}
	points, err := Sweep(nil, r.net, r.rt, r.pattern,
		Config{WarmupCycles: 200, MeasureCycles: 1000, Seed: 8}, []float64{0.05, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if Throughput(points) <= 0 {
		t.Fatal("zero throughput over sweep")
	}
	if points[0].Index != 1 || points[1].Index != 2 {
		t.Fatal("sweep indices wrong")
	}
	if sat := SaturationPoint(points); sat != 1 {
		t.Fatalf("SaturationPoint = %d, want 1 (0.6 flits/cycle/host must saturate)", sat)
	}
}
