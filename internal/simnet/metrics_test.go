package simnet

import (
	"strings"
	"testing"
)

func TestPercentileNearestRank(t *testing.T) {
	s := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		q    float64
		want int64
	}{
		{0.50, 50},
		{0.95, 100},
		{0.10, 10},
		{1.0, 100},
	}
	for _, c := range cases {
		if got := percentile(s, c.q); got != c.want {
			t.Fatalf("percentile(%.2f) = %d, want %d", c.q, got, c.want)
		}
	}
	if percentile(nil, 0.5) != 0 {
		t.Fatal("percentile of empty sample must be 0")
	}
	if percentile([]int64{7}, 0.01) != 7 {
		t.Fatal("single-sample percentile must return the sample")
	}
}

func TestLatencyPercentilesPopulated(t *testing.T) {
	r := newRig(t, 12, 4, 3, 1, true)
	sim, err := New(r.net, r.rt, r.pattern, Config{
		InjectionRate: 0.15, WarmupCycles: 500, MeasureCycles: 4000, Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.Run()
	if m.DeliveredMessages == 0 {
		t.Fatal("nothing delivered")
	}
	if m.LatencyP50 <= 0 || m.LatencyP95 < m.LatencyP50 || m.LatencyP99 < m.LatencyP95 {
		t.Fatalf("percentiles not monotone: p50=%v p95=%v p99=%v", m.LatencyP50, m.LatencyP95, m.LatencyP99)
	}
	// The mean sits between p50 and p99 for any right-skewed latency
	// distribution; weaker sanity: mean within [min, p99].
	if m.AvgLatency > m.LatencyP99 {
		t.Fatalf("mean %v above p99 %v", m.AvgLatency, m.LatencyP99)
	}
	// Percentiles ≥ serialization bound of a 16-flit message.
	if m.LatencyP50 < 16 {
		t.Fatalf("p50 %v below 16-flit serialization bound", m.LatencyP50)
	}
}

func TestSourceQueueGrowsWithLoad(t *testing.T) {
	r := newRig(t, 12, 4, 3, 1, true)
	run := func(rate float64) Metrics {
		sim, err := New(r.net, r.rt, r.pattern, Config{
			InjectionRate: rate, WarmupCycles: 500, MeasureCycles: 4000, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	low, high := run(0.02), run(0.6)
	if low.AvgSourceQueueFlits > 2 {
		t.Fatalf("low-load queue occupancy %.2f, want near zero", low.AvgSourceQueueFlits)
	}
	if high.AvgSourceQueueFlits < 10*low.AvgSourceQueueFlits || high.AvgSourceQueueFlits < 5 {
		t.Fatalf("saturated queue occupancy %.2f did not diverge (low was %.2f)",
			high.AvgSourceQueueFlits, low.AvgSourceQueueFlits)
	}
}

func TestMetricsStringMentionsKeyNumbers(t *testing.T) {
	m := Metrics{OfferedTraffic: 0.5, AcceptedTraffic: 0.25, AvgLatency: 42}
	s := m.String()
	for _, want := range []string{"0.5000", "0.2500", "42"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q: %s", want, s)
		}
	}
}

func TestSaturatedEdgeCases(t *testing.T) {
	if (&Metrics{}).Saturated() {
		t.Fatal("zero metrics reported saturated")
	}
	m := Metrics{OfferedTraffic: 1.0, AcceptedTraffic: 0.5}
	if !m.Saturated() {
		t.Fatal("half-delivered load not reported saturated")
	}
	ok := Metrics{OfferedTraffic: 1.0, AcceptedTraffic: 0.99}
	if ok.Saturated() {
		t.Fatal("99% delivery reported saturated")
	}
}

func TestBufferPopCompaction(t *testing.T) {
	// The ring-buffer compaction path in pop() must preserve FIFO order.
	b := &buffer{cap: 0, srcHost: 0}
	const total = 5000
	for i := int32(0); i < total; i++ {
		b.push(flit{msg: 0, seq: i})
	}
	compacted := false
	for i := int32(0); i < total; i++ {
		f := b.pop()
		if b.head == 0 && i > 0 {
			compacted = true
		}
		if f.seq != i {
			t.Fatalf("pop %d returned seq %d", i, f.seq)
		}
		// Interleave pushes to exercise compaction with nonempty tails.
		if i%3 == 0 {
			b.push(flit{msg: 0, seq: total + i})
		}
	}
	if !compacted {
		t.Fatal("head-compaction path (head > 1024) never triggered")
	}
	// The interleaved tail (total/3 + 1 pushes survive) must drain in
	// order after compaction moved it to the front of q.
	prev := int32(-1)
	for b.len() > 0 {
		f := b.pop()
		if f.seq <= prev {
			t.Fatalf("tail drained out of order: %d after %d", f.seq, prev)
		}
		prev = f.seq
	}
}

func TestPerClusterMetrics(t *testing.T) {
	r := newRig(t, 8, 4, 3, 1, false)
	clusters := make([]int, r.net.Hosts())
	for h := range clusters {
		clusters[h] = h / 8 // 4 applications of 8 hosts (balanced mapping)
	}
	sim, err := New(r.net, r.rt, r.pattern, Config{
		InjectionRate: 0.1, WarmupCycles: 500, MeasureCycles: 4000, Seed: 23,
		HostCluster: clusters,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.Run()
	if len(m.PerCluster) != 4 {
		t.Fatalf("PerCluster has %d entries, want 4", len(m.PerCluster))
	}
	var msgs, flits int64
	for i, cm := range m.PerCluster {
		if cm.Cluster != i {
			t.Fatalf("clusters not sorted: %v", m.PerCluster)
		}
		if cm.DeliveredMessages == 0 || cm.AvgLatency <= 0 {
			t.Fatalf("cluster %d has no service: %+v", i, cm)
		}
		msgs += cm.DeliveredMessages
		flits += cm.DeliveredFlits
	}
	if msgs != m.DeliveredMessages {
		t.Fatalf("per-cluster messages %d != total %d", msgs, m.DeliveredMessages)
	}
}

func TestPerClusterValidation(t *testing.T) {
	r := newRig(t, 8, 4, 3, 1, false)
	if _, err := New(r.net, r.rt, r.pattern, Config{HostCluster: []int{1}}); err == nil {
		t.Fatal("wrong HostCluster length accepted")
	}
	bad := make([]int, r.net.Hosts())
	bad[3] = -1
	if _, err := New(r.net, r.rt, r.pattern, Config{HostCluster: bad}); err == nil {
		t.Fatal("negative cluster accepted")
	}
}

func TestNoPerClusterWithoutLabels(t *testing.T) {
	r := newRig(t, 8, 4, 3, 1, false)
	sim, err := New(r.net, r.rt, r.pattern, Config{
		InjectionRate: 0.1, WarmupCycles: 200, MeasureCycles: 1000, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := sim.Run(); m.PerCluster != nil {
		t.Fatal("PerCluster populated without HostCluster labels")
	}
}
