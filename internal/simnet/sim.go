// Package simnet is a cycle-accurate flit-level simulator of wormhole
// switching on switch-based networks with up*/down* routing, following the
// evaluation methodology of Duato ("A new theory of deadlock-free adaptive
// routing in wormhole networks") that the paper's Section 5 uses.
//
// Model
//
//   - Every directed inter-switch link carries at most one flit per cycle
//     and multiplexes a configurable number of virtual channels; each
//     virtual channel has a FIFO flit buffer at the receiving switch.
//   - Hosts inject messages through a dedicated injection port (one flit
//     per cycle per host, unbounded source queue) and consume them through
//     a dedicated ejection port (one flit per cycle per host).
//   - A message acquires a virtual channel with its header and holds it
//     until its tail flit leaves that channel's buffer — classic wormhole
//     flow control. Routing is adaptive among the minimal legal up*/down*
//     continuations supplied by the routing tables, which keeps the
//     channel dependency graph acyclic and the network deadlock-free.
//   - Message generation is a Bernoulli process per host at a configured
//     flit injection rate; destinations come from a traffic.Pattern.
//
// Measurements follow the paper: message latency in cycles (from header
// injection into the network until tail delivery, with queueing latency
// from generation reported separately) and traffic in flits per switch per
// cycle.
//
// # Data layout
//
// The core runs on dense integer IDs assigned at New time: every directed
// link, every buffer (virtual-channel FIFOs and host source queues), and
// every output port lives in a flat arena indexed by int32, and per-link
// state (VC lists, dead flags, flit counters) is a slice lookup instead of
// a map. Messages live in a recycled arena too — a flit holds a message
// index, not a pointer — so the steady state of a run allocates nothing.
// Admissible-continuation candidate lists are precomputed per
// (switch, destination switch, routing phase), and a per-switch worklist
// of non-empty buffers lets route allocation and flit transfer touch only
// buffers with work. The results are bit-identical to the original
// pointer-and-map implementation: the math/rand draw order (one Bernoulli
// draw per host per cycle, then destination and size draws) and every
// rotating arbitration scan are preserved exactly; see DESIGN.md for the
// draw-order contract.
package simnet

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"commsched/internal/obs"
	"commsched/internal/routing"
	"commsched/internal/topology"
	"commsched/internal/traffic"
)

// LinkEvent schedules a mid-run failure of one inter-switch link: the link
// (both directions) dies at cycle At and, when RepairAt is nonzero, comes
// back at cycle RepairAt. Messages holding a virtual channel of a dying
// link — and messages left with no alive admissible hop — are dropped and
// accounted as lost in the metrics; the routing tables are NOT recomputed
// mid-run, modeling the window between a hardware failure and the
// reconfiguration that core.System.Degrade performs.
type LinkEvent struct {
	// A and B are the link's switch endpoints (order irrelevant).
	A, B int
	// At is the failure cycle (relative to simulation start).
	At int64
	// RepairAt is the repair cycle; 0 means the failure is permanent.
	RepairAt int64
}

// Config holds the microarchitectural and workload parameters of one
// simulation run.
type Config struct {
	// VirtualChannels per directed physical link (default 2).
	VirtualChannels int
	// BufferFlits is the depth of each virtual-channel FIFO (default 4).
	BufferFlits int
	// MessageFlits is the fixed message size in flits (default 16).
	MessageFlits int
	// BimodalFlits, when nonzero, enables a bimodal size mix (Duato's
	// evaluation style): messages are BimodalFlits long with probability
	// BimodalFraction and MessageFlits long otherwise. The injection
	// process is scaled so the offered *flit* rate stays InjectionRate.
	BimodalFlits int
	// BimodalFraction is the probability of the BimodalFlits size.
	BimodalFraction float64
	// InjectionRate is the offered load per host in flits/cycle.
	InjectionRate float64
	// WarmupCycles are simulated but excluded from measurement
	// (default 2000).
	WarmupCycles int
	// MeasureCycles is the measurement window length (default 10000).
	MeasureCycles int
	// Seed drives all stochastic choices of the run.
	Seed int64
	// RateScale optionally scales each host's injection rate (len ==
	// number of hosts); nil means uniform rates — the paper's setting.
	RateScale []float64
	// DeterministicRouting disables adaptivity: the header always takes
	// the first admissible hop and the first virtual channel, blocking
	// until that one channel frees. An ablation knob; the default
	// (false) is adaptive routing over all minimal legal continuations.
	DeterministicRouting bool
	// CutThrough switches the flow control from wormhole to virtual
	// cut-through: a header only acquires a virtual channel whose buffer
	// can hold the entire message, so blocked messages never stall
	// spanning multiple switches. Requires BufferFlits >= the largest
	// message size. An ablation of the switching technique.
	CutThrough bool
	// HostCluster optionally labels each host with its application
	// (logical cluster); when set, Metrics.PerCluster breaks delivery
	// counts and latency down by the sender's application.
	HostCluster []int
	// LinkEvents schedules mid-run link failures and repairs.
	LinkEvents []LinkEvent
}

// withDefaults fills zero fields with the defaults above.
func (c Config) withDefaults() Config {
	if c.VirtualChannels == 0 {
		c.VirtualChannels = 2
	}
	if c.BufferFlits == 0 {
		c.BufferFlits = 4
	}
	if c.MessageFlits == 0 {
		c.MessageFlits = 16
	}
	if c.WarmupCycles == 0 {
		c.WarmupCycles = 2000
	}
	if c.MeasureCycles == 0 {
		c.MeasureCycles = 10000
	}
	return c
}

// validate rejects nonsensical parameters.
func (c Config) validate(hosts int) error {
	if c.VirtualChannels < 1 {
		return fmt.Errorf("simnet: need >= 1 virtual channel, got %d", c.VirtualChannels)
	}
	if c.BufferFlits < 1 {
		return fmt.Errorf("simnet: need buffer depth >= 1, got %d", c.BufferFlits)
	}
	if c.MessageFlits < 1 {
		return fmt.Errorf("simnet: need message size >= 1 flit, got %d", c.MessageFlits)
	}
	if c.InjectionRate < 0 || c.InjectionRate > 1 {
		return fmt.Errorf("simnet: injection rate %v outside [0,1] flits/cycle/host", c.InjectionRate)
	}
	if c.WarmupCycles < 0 || c.MeasureCycles <= 0 {
		return fmt.Errorf("simnet: invalid cycle counts warmup=%d measure=%d", c.WarmupCycles, c.MeasureCycles)
	}
	if c.BimodalFlits < 0 {
		return fmt.Errorf("simnet: negative bimodal size %d", c.BimodalFlits)
	}
	if c.BimodalFraction < 0 || c.BimodalFraction > 1 {
		return fmt.Errorf("simnet: bimodal fraction %v outside [0,1]", c.BimodalFraction)
	}
	if c.BimodalFraction > 0 && c.BimodalFlits == 0 {
		return fmt.Errorf("simnet: BimodalFraction set without BimodalFlits")
	}
	if c.CutThrough {
		maxMsg := c.MessageFlits
		if c.BimodalFlits > maxMsg {
			maxMsg = c.BimodalFlits
		}
		if c.BufferFlits < maxMsg {
			return fmt.Errorf("simnet: cut-through needs BufferFlits >= message size (%d < %d)", c.BufferFlits, maxMsg)
		}
	}
	if c.HostCluster != nil {
		if len(c.HostCluster) != hosts {
			return fmt.Errorf("simnet: HostCluster has %d entries, want %d hosts", len(c.HostCluster), hosts)
		}
		for h, cl := range c.HostCluster {
			if cl < 0 {
				return fmt.Errorf("simnet: negative cluster for host %d", h)
			}
		}
	}
	if c.RateScale != nil && len(c.RateScale) != hosts {
		return fmt.Errorf("simnet: RateScale has %d entries, want %d hosts", len(c.RateScale), hosts)
	}
	for i, s := range c.RateScale {
		if s < 0 {
			return fmt.Errorf("simnet: negative rate scale at host %d", i)
		}
	}
	return nil
}

// none is the nil value of every dense ID (message, buffer, link, port).
const none = int32(-1)

// message is one in-flight wormhole message, stored in the simulator's
// recycled arena and referenced by index.
type message struct {
	src, dst  int32 // hosts
	dstSwitch int32
	size      int32
	// delivered counts flits consumed at the destination.
	delivered int32
	created   int64 // cycle of generation (enters source queue)
	injected  int64 // cycle the header left the source queue, -1 before
	// descending records whether the worm has entered its down phase.
	descending bool
	// lost marks a message dropped by a link failure (guards against
	// double-counting when one worm spans several dying links).
	lost bool
	// bufs lists every buffer the message has occupied or acquired — its
	// residency trail. loseMessage purges exactly these instead of
	// sweeping the whole network; the slice's capacity is recycled with
	// the arena slot.
	bufs []int32
}

// flit is one flow-control unit: a message arena index plus the flit's
// position (0 = header, size-1 = tail).
type flit struct {
	msg int32
	seq int32
}

// buffer is a FIFO of flits: either a virtual-channel buffer (bounded,
// single-owner) or a host source queue (unbounded, multi-message). All
// buffers live in one arena and are referenced by dense ID.
type buffer struct {
	q    []flit
	head int   // index of the logical head within q (amortized dequeue)
	cap  int   // 0 = unbounded (source queues)
	owner int32 // owning message for VC buffers, none when free

	// Where the message at the head is routed: a downstream VC buffer, or
	// the ejection port when sink is true. Reset when the owning tail
	// leaves.
	route     int32
	sink      bool
	routedMsg int32 // message the route belongs to, none when unrouted

	// Location of this buffer.
	atSwitch int32
	// srcHost identifies the injecting host for source queues, -1 for VC
	// buffers.
	srcHost int32
	// linkID is the directed link this buffer is the receiving VC of,
	// none for source queues.
	linkID int32
	// idx is this buffer's position within inputs[atSwitch] — the
	// rotating-arbitration rank base.
	idx int32
	// activePos is this buffer's position within active[atSwitch], -1
	// while the buffer is empty.
	activePos int32
}

func (b *buffer) len() int { return len(b.q) - b.head }

func (b *buffer) full() bool { return b.cap > 0 && b.len() >= b.cap }

func (b *buffer) push(f flit) { b.q = append(b.q, f) }

func (b *buffer) pop() flit {
	f := b.q[b.head]
	b.head++
	if b.head > 1024 && b.head*2 > len(b.q) {
		b.q = append(b.q[:0], b.q[b.head:]...)
		b.head = 0
	}
	return f
}

type directedLink struct{ from, to int }

// outPort is an arbitration domain: one directed physical link (one flit
// per cycle across all its VCs) or one host ejection port. winner and
// winnerRank are per-cycle scratch for the transfer pass.
type outPort struct {
	link       int32 // directed link ID, none for ejection ports
	eject      int32 // ejecting host, -1 for links
	winner     int32 // requesting buffer with the best rotating rank
	winnerRank int32
}

// Simulator runs one network+mapping+load configuration.
type Simulator struct {
	net     *topology.Network
	rt      *routing.UpDown
	pattern traffic.Pattern
	cfg     Config
	rng     *rand.Rand

	// bufs is the buffer arena; inputs[s] lists (by ID) all buffers whose
	// head flit is switched at s: incoming VC buffers then the source
	// queues of s's hosts, in construction order.
	bufs   []buffer
	inputs [][]int32
	// active[s] lists the currently non-empty buffers of switch s
	// (unordered; each buffer records its position for O(1) removal).
	active [][]int32
	// srcQueues lists every source-queue buffer in (switch, host) order —
	// the injection scan order, which fixes the rng draw order.
	srcQueues []int32
	// srcQueueFlits is the running total source-queue occupancy, so the
	// per-cycle queue sample is O(1).
	srcQueueFlits int64

	// Dense directed-link state, indexed by link ID.
	linkDir   []directedLink
	linkUp    []bool // IsUp(from, to), precomputed
	linkVCs   [][]int32
	deadLink  []bool
	linkFlits []int64 // flits crossing each link during the measurement window

	// ports is the output-port arena; switchPorts[s] lists s's ports in
	// construction order (one per outgoing directed link, then one
	// ejection port per host). portOfLink and portOfHost invert the
	// mapping for the transfer pass.
	ports       []outPort
	switchPorts [][]int32
	portOfLink  []int32
	portOfHost  []int32

	// cand[phase][s*n+t] lists the admissible next-hop link IDs for a
	// message at switch s destined to switch t in the given routing phase
	// (0 = up, 1 = descending), in routing.NextHops order. Precomputed at
	// New time so the allocation hot path never re-derives continuations.
	cand [2][][]int32

	// hostSwitch[h] caches net.HostSwitch(h).
	hostSwitch []int32

	// msgs is the message arena; freeMsgs holds recycled slots.
	msgs     []message
	freeMsgs []int32

	cycle int64

	// events is the sorted failure/repair timeline consumed by
	// processLinkEvents.
	events   []timedLinkEvent
	eventIdx int

	// reqPorts is per-cycle scratch: the ports that found a requester.
	reqPorts []int32

	metrics   Metrics
	measuring bool

	// queueHist accumulates the total source-queue occupancy per measured
	// cycle. Created only when a sink is installed at New time, so the
	// default path never pays for it; flushed as one "hist" record at the
	// end of RunContext.
	queueHist *obs.Histogram
}

// New builds a simulator. The routing structure must belong to the same
// network.
func New(net *topology.Network, rt *routing.UpDown, pattern traffic.Pattern, cfg Config) (*Simulator, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(net.Hosts()); err != nil {
		return nil, err
	}
	n := net.Switches()
	s := &Simulator{
		net:         net,
		rt:          rt,
		pattern:     pattern,
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		inputs:      make([][]int32, n),
		active:      make([][]int32, n),
		switchPorts: make([][]int32, n),
	}
	// Directed links get dense IDs in Links() order (A→B then B→A), and
	// their VCs join the receiving switch's input list.
	linkID := make(map[directedLink]int32, 2*net.NumLinks())
	for _, l := range net.Links() {
		for _, dl := range []directedLink{{l.A, l.B}, {l.B, l.A}} {
			id := int32(len(s.linkDir))
			linkID[dl] = id
			s.linkDir = append(s.linkDir, dl)
			s.linkUp = append(s.linkUp, rt.IsUp(dl.from, dl.to))
			vcs := make([]int32, cfg.VirtualChannels)
			for k := range vcs {
				bid := s.addBuffer(buffer{cap: cfg.BufferFlits, atSwitch: int32(dl.to), srcHost: -1, linkID: id})
				vcs[k] = bid
			}
			s.linkVCs = append(s.linkVCs, vcs)
			pid := int32(len(s.ports))
			s.ports = append(s.ports, outPort{link: id, eject: -1, winner: none})
			s.switchPorts[dl.from] = append(s.switchPorts[dl.from], pid)
			s.portOfLink = append(s.portOfLink, pid)
		}
	}
	s.deadLink = make([]bool, len(s.linkDir))
	s.linkFlits = make([]int64, len(s.linkDir))
	// Host source queues and ejection ports.
	s.portOfHost = make([]int32, net.Hosts())
	s.hostSwitch = make([]int32, net.Hosts())
	for h := range s.hostSwitch {
		s.hostSwitch[h] = int32(net.HostSwitch(h))
	}
	for sw := 0; sw < n; sw++ {
		for _, h := range net.SwitchHosts(sw) {
			bid := s.addBuffer(buffer{cap: 0, atSwitch: int32(sw), srcHost: int32(h), linkID: none})
			s.srcQueues = append(s.srcQueues, bid)
			pid := int32(len(s.ports))
			s.ports = append(s.ports, outPort{link: none, eject: int32(h), winner: none})
			s.switchPorts[sw] = append(s.switchPorts[sw], pid)
			s.portOfHost[h] = pid
		}
	}
	s.buildCandidates()
	if err := s.buildEvents(); err != nil {
		return nil, err
	}
	if obs.Enabled() {
		s.queueHist = obs.NewHistogram("simnet.queue_occupancy", obs.PowersOfTwoBounds(14))
	}
	return s, nil
}

// addBuffer appends a buffer to the arena and its switch's input list.
func (s *Simulator) addBuffer(b buffer) int32 {
	bid := int32(len(s.bufs))
	b.owner, b.route, b.routedMsg = none, none, none
	b.activePos = -1
	b.idx = int32(len(s.inputs[b.atSwitch]))
	s.bufs = append(s.bufs, b)
	s.inputs[b.atSwitch] = append(s.inputs[b.atSwitch], bid)
	return bid
}

// buildCandidates precomputes, for every (switch, destination, phase), the
// admissible next-hop link IDs in routing.NextHops order. One backing
// array per phase keeps the table to two allocations plus headers.
func (s *Simulator) buildCandidates() {
	n := s.net.Switches()
	linkID := make(map[directedLink]int32, len(s.linkDir))
	for id, dl := range s.linkDir {
		linkID[dl] = int32(id)
	}
	for phase := 0; phase < 2; phase++ {
		var backing []int32
		offs := make([]int32, n*n+1)
		for from := 0; from < n; from++ {
			for to := 0; to < n; to++ {
				offs[from*n+to] = int32(len(backing))
				if from == to {
					continue
				}
				for _, h := range s.rt.NextHops(from, to, phase == 1) {
					backing = append(backing, linkID[directedLink{from, h.To}])
				}
			}
		}
		offs[n*n] = int32(len(backing))
		tab := make([][]int32, n*n)
		for i := range tab {
			tab[i] = backing[offs[i]:offs[i+1]:offs[i+1]]
		}
		s.cand[phase] = tab
	}
}

// buildEvents validates cfg.LinkEvents and compiles the sorted timeline.
func (s *Simulator) buildEvents() error {
	linkID := make(map[directedLink]int32, len(s.linkDir))
	for id, dl := range s.linkDir {
		linkID[dl] = int32(id)
	}
	for i, ev := range s.cfg.LinkEvents {
		l := topology.NormalizeLink(ev.A, ev.B)
		if l.A < 0 || l.B >= s.net.Switches() || !s.net.HasLink(l.A, l.B) {
			return fmt.Errorf("simnet: link event %d: link %d-%d does not exist in %s", i, ev.A, ev.B, s.net.Name())
		}
		if ev.At < 0 {
			return fmt.Errorf("simnet: link event %d: negative failure cycle %d", i, ev.At)
		}
		if ev.RepairAt != 0 && ev.RepairAt <= ev.At {
			return fmt.Errorf("simnet: link event %d: repair cycle %d not after failure cycle %d", i, ev.RepairAt, ev.At)
		}
		d1, d2 := linkID[directedLink{l.A, l.B}], linkID[directedLink{l.B, l.A}]
		s.events = append(s.events, timedLinkEvent{cycle: ev.At, d1: d1, d2: d2, down: true})
		if ev.RepairAt > 0 {
			s.events = append(s.events, timedLinkEvent{cycle: ev.RepairAt, d1: d1, d2: d2, down: false})
		}
	}
	sort.SliceStable(s.events, func(i, j int) bool {
		if s.events[i].cycle != s.events[j].cycle {
			return s.events[i].cycle < s.events[j].cycle
		}
		return s.events[i].down && !s.events[j].down
	})
	return nil
}

// Run simulates warmup plus measurement and returns the metrics.
func (s *Simulator) Run() Metrics {
	m, _ := s.RunContext(context.Background())
	return m
}

// RunContext is Run with cancellation: the context is polled every few
// hundred cycles and a cancellation surfaces as a wrapped ctx.Err(). A nil
// context means Background.
func (s *Simulator) RunContext(ctx context.Context) (Metrics, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sp, ctx := obs.StartSpanCtx(ctx, "simnet.run",
		obs.F("rate", s.cfg.InjectionRate),
		obs.F("warmup_cycles", s.cfg.WarmupCycles),
		obs.F("measure_cycles", s.cfg.MeasureCycles),
		obs.F("seed", s.cfg.Seed))
	total := s.cfg.WarmupCycles + s.cfg.MeasureCycles
	for c := 0; c < total; c++ {
		if c%256 == 0 {
			if err := ctx.Err(); err != nil {
				return Metrics{}, fmt.Errorf("simnet: run cancelled at cycle %d: %w", s.cycle, err)
			}
		}
		if c == s.cfg.WarmupCycles {
			s.measuring = true
			s.metrics.measureStart = s.cycle
		}
		s.step()
	}
	s.metrics.finalizeLinks(s.linkFlits, s.linkDir, s.cfg)
	s.metrics.finalize(s.cfg, s.net)
	sp.End(
		obs.F("generated_messages", s.metrics.GeneratedMessages),
		obs.F("delivered_messages", s.metrics.DeliveredMessages),
		obs.F("lost_messages", s.metrics.LostMessages),
		obs.F("offered_flits", s.metrics.offeredFlits),
		obs.F("delivered_flits", s.metrics.deliveredFlits),
		obs.F("lost_flits", s.metrics.LostFlits),
		obs.F("offered_traffic", s.metrics.OfferedTraffic),
		obs.F("accepted_traffic", s.metrics.AcceptedTraffic),
		obs.F("avg_latency", s.metrics.AvgLatency),
		obs.F("saturated", s.metrics.Saturated()))
	if s.queueHist != nil {
		s.queueHist.Emit(obs.F("rate", s.cfg.InjectionRate), obs.F("seed", s.cfg.Seed))
	}
	return s.metrics, nil
}

// Advance runs the simulator forward by the given number of cycles without
// starting or finalizing a measurement window — the hook steady-state
// benchmarks and tests use to time (and count allocations of) the bare
// simulation loop.
func (s *Simulator) Advance(cycles int) {
	for c := 0; c < cycles; c++ {
		s.step()
	}
}

// step advances the simulation one cycle.
func (s *Simulator) step() {
	s.processLinkEvents()
	s.generate()
	s.allocateRoutes()
	s.transferFlits()
	if s.measuring {
		s.sampleQueues()
	}
	s.cycle++
}

// timedLinkEvent is one entry of the failure/repair timeline, carrying the
// dense IDs of the link's two directions.
type timedLinkEvent struct {
	cycle  int64
	d1, d2 int32
	down   bool
}

// processLinkEvents applies all timeline entries due at the current cycle.
func (s *Simulator) processLinkEvents() {
	for s.eventIdx < len(s.events) && s.events[s.eventIdx].cycle <= s.cycle {
		ev := s.events[s.eventIdx]
		s.eventIdx++
		if !ev.down {
			s.deadLink[ev.d1] = false
			s.deadLink[ev.d2] = false
			continue
		}
		s.deadLink[ev.d1] = true
		s.deadLink[ev.d2] = true
		// Worms holding a virtual channel of the dying link are lost.
		for _, dl := range [2]int32{ev.d1, ev.d2} {
			for _, bid := range s.linkVCs[dl] {
				if mi := s.bufs[bid].owner; mi != none {
					s.loseMessage(mi)
				}
			}
		}
	}
}

// loseMessage drops every flit of m from every buffer on its residency
// trail, releases the virtual channels and routes it held, accounts the
// loss, and recycles the arena slot.
func (s *Simulator) loseMessage(mi int32) {
	m := &s.msgs[mi]
	if m.lost {
		return
	}
	m.lost = true
	for _, bid := range m.bufs {
		in := &s.bufs[bid]
		if in.routedMsg == mi {
			in.route, in.sink, in.routedMsg = none, false, none
		}
		if in.owner == mi {
			in.owner = none
		}
		if in.len() == 0 {
			continue
		}
		w, removed := 0, 0
		for r := in.head; r < len(in.q); r++ {
			if in.q[r].msg == mi {
				removed++
				continue
			}
			in.q[w] = in.q[r]
			w++
		}
		if removed > 0 {
			in.q = in.q[:w]
			in.head = 0
			if in.srcHost >= 0 {
				s.srcQueueFlits -= int64(removed)
			}
			if w == 0 {
				s.deactivate(bid)
			}
		}
	}
	if s.measuring {
		s.metrics.lostMessages++
		s.metrics.lostFlits += int64(m.size - m.delivered)
	}
	s.freeMessage(mi)
}

// samplePeriod is how often (in measured cycles) a live "simnet.sample"
// event is emitted when a sink is installed — coarse enough to stay off
// the critical path, fine enough to draw queue-occupancy and active-worm
// counter tracks in the Chrome trace / SSE views.
const samplePeriod = 256

// sampleQueues accumulates source-queue occupancy for the mean-queue
// metric (an early saturation indicator: queues grow without bound past
// the saturation point). The occupancy total is maintained incrementally,
// so the sample is O(1). When observability is on (queueHist was created
// at New time), every samplePeriod-th cycle additionally emits a live
// sample with the current occupancy and in-flight worm count.
func (s *Simulator) sampleQueues() {
	s.metrics.queueSamples++
	s.metrics.queueFlitsSum += s.srcQueueFlits
	if s.queueHist != nil {
		s.queueHist.Observe(float64(s.srcQueueFlits))
		if s.metrics.queueSamples%samplePeriod == 1 {
			obs.Event("simnet.sample",
				obs.F("cycle", s.cycle),
				obs.F("rate", s.cfg.InjectionRate),
				obs.F("queue_flits", s.srcQueueFlits),
				obs.F("active_worms", int64(len(s.msgs)-len(s.freeMsgs))))
		}
	}
}

// meanMessageFlits returns the expected message length under the
// configured size mix.
func (s *Simulator) meanMessageFlits() float64 {
	if s.cfg.BimodalFraction == 0 {
		return float64(s.cfg.MessageFlits)
	}
	return s.cfg.BimodalFraction*float64(s.cfg.BimodalFlits) +
		(1-s.cfg.BimodalFraction)*float64(s.cfg.MessageFlits)
}

// drawMessageSize samples the configured size distribution.
func (s *Simulator) drawMessageSize() int {
	if s.cfg.BimodalFraction > 0 && s.rng.Float64() < s.cfg.BimodalFraction {
		return s.cfg.BimodalFlits
	}
	return s.cfg.MessageFlits
}

// allocMessage returns a fresh or recycled message arena slot.
func (s *Simulator) allocMessage() int32 {
	if n := len(s.freeMsgs); n > 0 {
		mi := s.freeMsgs[n-1]
		s.freeMsgs = s.freeMsgs[:n-1]
		return mi
	}
	s.msgs = append(s.msgs, message{})
	return int32(len(s.msgs) - 1)
}

// freeMessage recycles a slot whose message is fully delivered or purged:
// no buffer references it anymore.
func (s *Simulator) freeMessage(mi int32) {
	s.freeMsgs = append(s.freeMsgs, mi)
}

// generate draws new messages at every host. The scan order over source
// queues — and therefore the rng draw order (acceptance, destination,
// size) — is part of the determinism contract.
func (s *Simulator) generate() {
	meanFlits := s.meanMessageFlits()
	for _, bid := range s.srcQueues {
		in := &s.bufs[bid]
		rate := s.cfg.InjectionRate
		if s.cfg.RateScale != nil {
			rate *= s.cfg.RateScale[in.srcHost]
		}
		p := rate / meanFlits // message generation probability
		if p <= 0 || s.rng.Float64() >= p {
			continue
		}
		dst := s.pattern.Destination(int(in.srcHost), s.rng)
		size := int32(s.drawMessageSize())
		mi := s.allocMessage()
		m := &s.msgs[mi]
		m.src, m.dst = in.srcHost, int32(dst)
		m.dstSwitch = s.hostSwitch[dst]
		m.size = size
		m.delivered = 0
		m.created = s.cycle
		m.injected = -1
		m.descending = false
		m.lost = false
		m.bufs = append(m.bufs[:0], bid)
		wasEmpty := in.len() == 0
		for seq := int32(0); seq < size; seq++ {
			in.push(flit{msg: mi, seq: seq})
		}
		s.srcQueueFlits += int64(size)
		if wasEmpty {
			s.activate(bid)
		}
		if s.measuring {
			s.metrics.generatedMessages++
			s.metrics.offeredFlits += int64(size)
		}
	}
}

// activate adds a buffer to its switch's worklist (idempotent).
func (s *Simulator) activate(bid int32) {
	b := &s.bufs[bid]
	if b.activePos >= 0 {
		return
	}
	lst := s.active[b.atSwitch]
	b.activePos = int32(len(lst))
	s.active[b.atSwitch] = append(lst, bid)
}

// deactivate removes a (now empty) buffer from its switch's worklist by
// swap-removal.
func (s *Simulator) deactivate(bid int32) {
	b := &s.bufs[bid]
	pos := b.activePos
	if pos < 0 {
		return
	}
	lst := s.active[b.atSwitch]
	last := lst[len(lst)-1]
	lst[pos] = last
	s.bufs[last].activePos = pos
	s.active[b.atSwitch] = lst[:len(lst)-1]
	b.activePos = -1
}

// allocateRoutes lets unrouted header flits at buffer heads acquire an
// output virtual channel (or the ejection port). Allocation order rotates
// per switch to avoid structural starvation; switches with no pending work
// are skipped entirely, and the rotating scan checks the worklist flag
// before touching a buffer's queue.
func (s *Simulator) allocateRoutes() {
	for sw := 0; sw < len(s.inputs); sw++ {
		if len(s.active[sw]) == 0 {
			continue
		}
		ins := s.inputs[sw]
		n := len(ins)
		start := int(s.cycle % int64(n))
		for k := 0; k < n; k++ {
			in := &s.bufs[ins[(start+k)%n]]
			if in.activePos < 0 {
				continue // empty
			}
			f := in.q[in.head]
			if f.seq != 0 || in.routedMsg == f.msg {
				continue
			}
			s.routeHeader(sw, in, f.msg)
		}
	}
}

// routeHeader tries to reserve the next channel for the message whose
// header sits at the head of `in` at switch sw. The candidate continuation
// links are precomputed per (switch, destination, phase).
func (s *Simulator) routeHeader(sw int, in *buffer, mi int32) {
	m := &s.msgs[mi]
	if int32(sw) == m.dstSwitch {
		in.route, in.sink, in.routedMsg = none, true, mi
		return
	}
	phase := 0
	if m.descending {
		phase = 1
	}
	cands := s.cand[phase][sw*s.net.Switches()+int(m.dstSwitch)]
	if s.cfg.DeterministicRouting {
		// Fixed path, fixed channel: wait for exactly one VC.
		if len(cands) == 0 {
			return
		}
		lid := cands[0]
		if s.deadLink[lid] {
			// The only route crosses a failed link and the tables don't
			// know yet: the worm is stranded and dropped.
			s.loseMessage(mi)
			return
		}
		bid := s.linkVCs[lid][0]
		if s.admissible(bid, m) {
			s.acquire(in, bid, mi, m)
		}
		return
	}
	// Adaptive selection: first hop with a free VC, scanning hops and VCs
	// from a rotating offset so ties spread across channels.
	off := int(s.cycle) // deterministic, varies per cycle
	anyAlive := false
	for hi := 0; hi < len(cands); hi++ {
		lid := cands[(hi+off)%len(cands)]
		if s.deadLink[lid] {
			continue
		}
		anyAlive = true
		vcs := s.linkVCs[lid]
		for vi := 0; vi < len(vcs); vi++ {
			bid := vcs[(vi+off)%len(vcs)]
			if s.admissible(bid, m) {
				s.acquire(in, bid, mi, m)
				// The descending state must change only when the flit
				// actually moves; the phase commits in forward.
				return
			}
		}
	}
	if len(cands) > 0 && !anyAlive {
		// Every admissible continuation crosses a failed link: stranded.
		s.loseMessage(mi)
	}
	// Blocked: try again next cycle.
}

// admissible reports whether the candidate VC buffer can be acquired by m:
// free, and under cut-through big enough to absorb the entire message.
func (s *Simulator) admissible(bid int32, m *message) bool {
	b := &s.bufs[bid]
	if b.owner != none {
		return false
	}
	if s.cfg.CutThrough && b.cap > 0 && int32(b.cap) < m.size {
		return false
	}
	return true
}

// acquire reserves the downstream VC buffer for mi and records it on the
// message's residency trail.
func (s *Simulator) acquire(in *buffer, bid, mi int32, m *message) {
	s.bufs[bid].owner = mi
	in.route, in.sink, in.routedMsg = bid, false, mi
	m.bufs = append(m.bufs, bid)
}

// transferFlits moves at most one flit per output port. For each switch it
// makes one pass over the active buffers to find, per requested port, the
// input with the best rotating-arbitration rank, then executes the moves.
// This is equivalent to the per-port rotating scan because, within one
// switch's pass, the request set is fixed: pushes into this switch come
// only from lower-numbered switches (already processed), each buffer
// requests exactly one port, and a served buffer either keeps requesting
// the port it already used or stops requesting (tail departed).
func (s *Simulator) transferFlits() {
	for sw := 0; sw < len(s.inputs); sw++ {
		act := s.active[sw]
		if len(act) == 0 {
			continue
		}
		n := int32(len(s.inputs[sw]))
		start := int32(s.cycle % int64(n))
		req := s.reqPorts[:0]
		for _, bid := range act {
			in := &s.bufs[bid]
			f := in.q[in.head]
			if in.routedMsg != f.msg {
				continue
			}
			var pid int32
			if in.sink {
				pid = s.portOfHost[s.msgs[f.msg].dst]
			} else if in.route != none {
				rb := &s.bufs[in.route]
				if rb.full() {
					continue
				}
				pid = s.portOfLink[rb.linkID]
			} else {
				continue
			}
			rank := in.idx - start
			if rank < 0 {
				rank += n
			}
			p := &s.ports[pid]
			if p.winner == none {
				p.winner, p.winnerRank = bid, rank
				req = append(req, pid)
			} else if rank < p.winnerRank {
				p.winner, p.winnerRank = bid, rank
			}
		}
		for _, pid := range req {
			p := &s.ports[pid]
			bid := p.winner
			p.winner = none
			in := &s.bufs[bid]
			f := in.q[in.head]
			if p.eject >= 0 {
				s.deliver(bid, in, f)
			} else {
				s.forward(bid, in, f)
			}
		}
		s.reqPorts = req[:0]
	}
}

// popHead removes the head flit of buffer bid, maintaining the queue
// occupancy total and the worklist.
func (s *Simulator) popHead(bid int32, in *buffer) {
	in.pop()
	if in.srcHost >= 0 {
		s.srcQueueFlits--
	}
	if in.len() == 0 {
		s.deactivate(bid)
	}
}

// forward moves the head flit of `in` into its routed downstream VC.
func (s *Simulator) forward(bid int32, in *buffer, f flit) {
	route := in.route
	dst := &s.bufs[route]
	s.popHead(bid, in)
	wasEmpty := dst.len() == 0
	dst.push(f)
	if wasEmpty {
		s.activate(route)
	}
	if s.measuring {
		s.linkFlits[dst.linkID]++
	}
	m := &s.msgs[f.msg]
	if f.seq == 0 {
		if m.injected < 0 {
			m.injected = s.cycle
		}
		// Crossing a down link commits the worm to its down phase.
		if !s.linkUp[dst.linkID] {
			m.descending = true
		}
	}
	if f.seq == m.size-1 {
		s.releaseHead(in)
	}
}

// deliver consumes the head flit of `in` at its destination host.
func (s *Simulator) deliver(bid int32, in *buffer, f flit) {
	s.popHead(bid, in)
	mi := f.msg
	m := &s.msgs[mi]
	if f.seq == 0 && m.injected < 0 {
		// Source and destination share a switch: the message never crossed
		// a link; treat ejection start as injection.
		m.injected = s.cycle
	}
	m.delivered++
	if s.measuring {
		s.metrics.deliveredFlits++
	}
	if f.seq == m.size-1 {
		s.releaseHead(in)
		if s.measuring && m.created >= s.metrics.measureStart {
			s.metrics.deliveredMessages++
			s.metrics.totalLatency += s.cycle - m.injected
			s.metrics.totalQueueLatency += s.cycle - m.created
			s.metrics.latencySamples = append(s.metrics.latencySamples, s.cycle-m.injected)
			if s.cfg.HostCluster != nil {
				s.metrics.addClusterSample(s.cfg.HostCluster[m.src], int64(m.size), s.cycle-m.injected)
			}
		}
		s.freeMessage(mi)
	}
}

// releaseHead clears the routing state of `in` after a tail departs and
// frees the VC ownership when `in` is a virtual-channel buffer.
func (s *Simulator) releaseHead(in *buffer) {
	if in.srcHost < 0 {
		in.owner = none
	}
	in.route, in.sink, in.routedMsg = none, false, none
}

// Drain stops injection and keeps switching until the network empties or
// maxCycles elapse, returning whether it fully drained. For a
// deadlock-free configuration the drain always completes; tests use it as
// the liveness oracle.
func (s *Simulator) Drain(maxCycles int) bool {
	saved := s.cfg.InjectionRate
	s.cfg.InjectionRate = 0
	defer func() { s.cfg.InjectionRate = saved }()
	for c := 0; c < maxCycles; c++ {
		if s.inflight() == 0 {
			return true
		}
		s.step()
	}
	return s.inflight() == 0
}

// inflight counts flits in every buffer.
func (s *Simulator) inflight() int {
	total := 0
	for i := range s.bufs {
		total += s.bufs[i].len()
	}
	return total
}
