// Package simnet is a cycle-accurate flit-level simulator of wormhole
// switching on switch-based networks with up*/down* routing, following the
// evaluation methodology of Duato ("A new theory of deadlock-free adaptive
// routing in wormhole networks") that the paper's Section 5 uses.
//
// Model
//
//   - Every directed inter-switch link carries at most one flit per cycle
//     and multiplexes a configurable number of virtual channels; each
//     virtual channel has a FIFO flit buffer at the receiving switch.
//   - Hosts inject messages through a dedicated injection port (one flit
//     per cycle per host, unbounded source queue) and consume them through
//     a dedicated ejection port (one flit per cycle per host).
//   - A message acquires a virtual channel with its header and holds it
//     until its tail flit leaves that channel's buffer — classic wormhole
//     flow control. Routing is adaptive among the minimal legal up*/down*
//     continuations supplied by the routing tables, which keeps the
//     channel dependency graph acyclic and the network deadlock-free.
//   - Message generation is a Bernoulli process per host at a configured
//     flit injection rate; destinations come from a traffic.Pattern.
//
// Measurements follow the paper: message latency in cycles (from header
// injection into the network until tail delivery, with queueing latency
// from generation reported separately) and traffic in flits per switch per
// cycle.
package simnet

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"commsched/internal/obs"
	"commsched/internal/routing"
	"commsched/internal/topology"
	"commsched/internal/traffic"
)

// LinkEvent schedules a mid-run failure of one inter-switch link: the link
// (both directions) dies at cycle At and, when RepairAt is nonzero, comes
// back at cycle RepairAt. Messages holding a virtual channel of a dying
// link — and messages left with no alive admissible hop — are dropped and
// accounted as lost in the metrics; the routing tables are NOT recomputed
// mid-run, modeling the window between a hardware failure and the
// reconfiguration that core.System.Degrade performs.
type LinkEvent struct {
	// A and B are the link's switch endpoints (order irrelevant).
	A, B int
	// At is the failure cycle (relative to simulation start).
	At int64
	// RepairAt is the repair cycle; 0 means the failure is permanent.
	RepairAt int64
}

// Config holds the microarchitectural and workload parameters of one
// simulation run.
type Config struct {
	// VirtualChannels per directed physical link (default 2).
	VirtualChannels int
	// BufferFlits is the depth of each virtual-channel FIFO (default 4).
	BufferFlits int
	// MessageFlits is the fixed message size in flits (default 16).
	MessageFlits int
	// BimodalFlits, when nonzero, enables a bimodal size mix (Duato's
	// evaluation style): messages are BimodalFlits long with probability
	// BimodalFraction and MessageFlits long otherwise. The injection
	// process is scaled so the offered *flit* rate stays InjectionRate.
	BimodalFlits int
	// BimodalFraction is the probability of the BimodalFlits size.
	BimodalFraction float64
	// InjectionRate is the offered load per host in flits/cycle.
	InjectionRate float64
	// WarmupCycles are simulated but excluded from measurement
	// (default 2000).
	WarmupCycles int
	// MeasureCycles is the measurement window length (default 10000).
	MeasureCycles int
	// Seed drives all stochastic choices of the run.
	Seed int64
	// RateScale optionally scales each host's injection rate (len ==
	// number of hosts); nil means uniform rates — the paper's setting.
	RateScale []float64
	// DeterministicRouting disables adaptivity: the header always takes
	// the first admissible hop and the first virtual channel, blocking
	// until that one channel frees. An ablation knob; the default
	// (false) is adaptive routing over all minimal legal continuations.
	DeterministicRouting bool
	// CutThrough switches the flow control from wormhole to virtual
	// cut-through: a header only acquires a virtual channel whose buffer
	// can hold the entire message, so blocked messages never stall
	// spanning multiple switches. Requires BufferFlits >= the largest
	// message size. An ablation of the switching technique.
	CutThrough bool
	// HostCluster optionally labels each host with its application
	// (logical cluster); when set, Metrics.PerCluster breaks delivery
	// counts and latency down by the sender's application.
	HostCluster []int
	// LinkEvents schedules mid-run link failures and repairs.
	LinkEvents []LinkEvent
}

// withDefaults fills zero fields with the defaults above.
func (c Config) withDefaults() Config {
	if c.VirtualChannels == 0 {
		c.VirtualChannels = 2
	}
	if c.BufferFlits == 0 {
		c.BufferFlits = 4
	}
	if c.MessageFlits == 0 {
		c.MessageFlits = 16
	}
	if c.WarmupCycles == 0 {
		c.WarmupCycles = 2000
	}
	if c.MeasureCycles == 0 {
		c.MeasureCycles = 10000
	}
	return c
}

// validate rejects nonsensical parameters.
func (c Config) validate(hosts int) error {
	if c.VirtualChannels < 1 {
		return fmt.Errorf("simnet: need >= 1 virtual channel, got %d", c.VirtualChannels)
	}
	if c.BufferFlits < 1 {
		return fmt.Errorf("simnet: need buffer depth >= 1, got %d", c.BufferFlits)
	}
	if c.MessageFlits < 1 {
		return fmt.Errorf("simnet: need message size >= 1 flit, got %d", c.MessageFlits)
	}
	if c.InjectionRate < 0 || c.InjectionRate > 1 {
		return fmt.Errorf("simnet: injection rate %v outside [0,1] flits/cycle/host", c.InjectionRate)
	}
	if c.WarmupCycles < 0 || c.MeasureCycles <= 0 {
		return fmt.Errorf("simnet: invalid cycle counts warmup=%d measure=%d", c.WarmupCycles, c.MeasureCycles)
	}
	if c.BimodalFlits < 0 {
		return fmt.Errorf("simnet: negative bimodal size %d", c.BimodalFlits)
	}
	if c.BimodalFraction < 0 || c.BimodalFraction > 1 {
		return fmt.Errorf("simnet: bimodal fraction %v outside [0,1]", c.BimodalFraction)
	}
	if c.BimodalFraction > 0 && c.BimodalFlits == 0 {
		return fmt.Errorf("simnet: BimodalFraction set without BimodalFlits")
	}
	if c.CutThrough {
		maxMsg := c.MessageFlits
		if c.BimodalFlits > maxMsg {
			maxMsg = c.BimodalFlits
		}
		if c.BufferFlits < maxMsg {
			return fmt.Errorf("simnet: cut-through needs BufferFlits >= message size (%d < %d)", c.BufferFlits, maxMsg)
		}
	}
	if c.HostCluster != nil {
		if len(c.HostCluster) != hosts {
			return fmt.Errorf("simnet: HostCluster has %d entries, want %d hosts", len(c.HostCluster), hosts)
		}
		for h, cl := range c.HostCluster {
			if cl < 0 {
				return fmt.Errorf("simnet: negative cluster for host %d", h)
			}
		}
	}
	if c.RateScale != nil && len(c.RateScale) != hosts {
		return fmt.Errorf("simnet: RateScale has %d entries, want %d hosts", len(c.RateScale), hosts)
	}
	for i, s := range c.RateScale {
		if s < 0 {
			return fmt.Errorf("simnet: negative rate scale at host %d", i)
		}
	}
	return nil
}

// message is one in-flight wormhole message.
type message struct {
	id        int
	src, dst  int // hosts
	dstSwitch int
	size      int
	created   int64 // cycle of generation (enters source queue)
	injected  int64 // cycle the header left the source queue, -1 before
	// descending records whether the worm has entered its down phase.
	descending bool
	delivered  int // flits consumed at the destination
	// lost marks a message dropped by a link failure (guards against
	// double-counting when one worm spans several dying links).
	lost bool
}

// flit is one flow-control unit.
type flit struct {
	msg *message
	seq int // 0 = header, size-1 = tail
}

func (f flit) isHeader() bool { return f.seq == 0 }
func (f flit) isTail() bool   { return f.seq == f.msg.size-1 }

// buffer is a FIFO of flits: either a virtual-channel buffer (bounded,
// single-owner) or a host source queue (unbounded, multi-message).
type buffer struct {
	q     []flit
	head  int // index of the logical head within q (amortized dequeue)
	cap   int // 0 = unbounded (source queues)
	owner *message

	// Where the message at the head is routed: a downstream VC, or the
	// ejection port when sink is true. Reset when the owning tail leaves.
	route     *vc
	sink      bool
	routedMsg *message // message the route belongs to

	// Location of this buffer.
	atSwitch int
	// For VC buffers, the output port candidates are derived from the
	// switch; for source queues, srcHost >= 0 identifies the injecting
	// host.
	srcHost int
}

func (b *buffer) len() int { return len(b.q) - b.head }

func (b *buffer) full() bool { return b.cap > 0 && b.len() >= b.cap }

func (b *buffer) headFlit() (flit, bool) {
	if b.len() == 0 {
		return flit{}, false
	}
	return b.q[b.head], true
}

func (b *buffer) push(f flit) { b.q = append(b.q, f) }

func (b *buffer) pop() flit {
	f := b.q[b.head]
	b.head++
	if b.head > 1024 && b.head*2 > len(b.q) {
		b.q = append(b.q[:0], b.q[b.head:]...)
		b.head = 0
	}
	return f
}

// vc is one virtual channel of a directed link: its buffer lives at the
// link's destination switch.
type vc struct {
	buf  *buffer
	link directedLink // the physical link this VC belongs to
}

type directedLink struct{ from, to int }

// outPort is an arbitration domain: one directed physical link (one flit
// per cycle across all its VCs) or one host ejection port.
type outPort struct {
	link     directedLink // valid when eject < 0
	eject    int          // ejecting host, -1 for links
	vcs      []*vc        // VCs of the link (nil for ejection)
	rrOffset int          // round-robin pointer over requesting inputs
}

// Simulator runs one network+mapping+load configuration.
type Simulator struct {
	net     *topology.Network
	rt      *routing.UpDown
	pattern traffic.Pattern
	cfg     Config
	rng     *rand.Rand

	// inputs[s] = all buffers whose head flit is switched at s: incoming
	// VC buffers and the source queues of s's hosts.
	inputs [][]*buffer
	// ports[s] = output ports at switch s: one per outgoing directed link
	// plus one ejection port per host.
	ports [][]*outPort
	// linkVCs[from][to] = VCs of directed link from→to.
	linkVCs map[directedLink][]*vc
	// rrInput[s] = rotating start index for routing allocation at s.
	rrInput []int

	cycle     int64
	nextMsgID int

	// deadLinks marks directed links currently failed; events is the
	// sorted failure/repair timeline consumed by processLinkEvents.
	deadLinks map[directedLink]bool
	events    []timedLinkEvent
	eventIdx  int

	// linkFlits counts flits crossing each directed link during the
	// measurement window (the paper's observation about up*/down*
	// overloading links near the root is visible here).
	linkFlits map[directedLink]int64

	metrics   Metrics
	measuring bool

	// queueHist accumulates the total source-queue occupancy per measured
	// cycle. Created only when a sink is installed at New time, so the
	// default path never pays for it; flushed as one "hist" record at the
	// end of RunContext.
	queueHist *obs.Histogram
}

// New builds a simulator. The routing structure must belong to the same
// network.
func New(net *topology.Network, rt *routing.UpDown, pattern traffic.Pattern, cfg Config) (*Simulator, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(net.Hosts()); err != nil {
		return nil, err
	}
	s := &Simulator{
		net:       net,
		rt:        rt,
		pattern:   pattern,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		inputs:    make([][]*buffer, net.Switches()),
		ports:     make([][]*outPort, net.Switches()),
		linkVCs:   make(map[directedLink][]*vc),
		rrInput:   make([]int, net.Switches()),
		linkFlits: make(map[directedLink]int64),
		deadLinks: make(map[directedLink]bool),
	}
	for i, ev := range cfg.LinkEvents {
		l := topology.NormalizeLink(ev.A, ev.B)
		if l.A < 0 || l.B >= net.Switches() || !net.HasLink(l.A, l.B) {
			return nil, fmt.Errorf("simnet: link event %d: link %d-%d does not exist in %s", i, ev.A, ev.B, net.Name())
		}
		if ev.At < 0 {
			return nil, fmt.Errorf("simnet: link event %d: negative failure cycle %d", i, ev.At)
		}
		if ev.RepairAt != 0 && ev.RepairAt <= ev.At {
			return nil, fmt.Errorf("simnet: link event %d: repair cycle %d not after failure cycle %d", i, ev.RepairAt, ev.At)
		}
		s.events = append(s.events, timedLinkEvent{cycle: ev.At, link: l, down: true})
		if ev.RepairAt > 0 {
			s.events = append(s.events, timedLinkEvent{cycle: ev.RepairAt, link: l, down: false})
		}
	}
	sort.SliceStable(s.events, func(i, j int) bool {
		if s.events[i].cycle != s.events[j].cycle {
			return s.events[i].cycle < s.events[j].cycle
		}
		return s.events[i].down && !s.events[j].down
	})
	// Directed links and their VCs.
	for _, l := range net.Links() {
		for _, dl := range []directedLink{{l.A, l.B}, {l.B, l.A}} {
			vcs := make([]*vc, cfg.VirtualChannels)
			for k := range vcs {
				vcs[k] = &vc{
					buf:  &buffer{cap: cfg.BufferFlits, atSwitch: dl.to, srcHost: -1},
					link: dl,
				}
				s.inputs[dl.to] = append(s.inputs[dl.to], vcs[k].buf)
			}
			s.linkVCs[dl] = vcs
			s.ports[dl.from] = append(s.ports[dl.from], &outPort{link: dl, eject: -1, vcs: vcs})
		}
	}
	// Host source queues and ejection ports.
	for sw := 0; sw < net.Switches(); sw++ {
		for _, h := range net.SwitchHosts(sw) {
			s.inputs[sw] = append(s.inputs[sw], &buffer{cap: 0, atSwitch: sw, srcHost: h})
			s.ports[sw] = append(s.ports[sw], &outPort{eject: h})
		}
	}
	if obs.Enabled() {
		s.queueHist = obs.NewHistogram("simnet.queue_occupancy", obs.PowersOfTwoBounds(14))
	}
	return s, nil
}

// Run simulates warmup plus measurement and returns the metrics.
func (s *Simulator) Run() Metrics {
	m, _ := s.RunContext(context.Background())
	return m
}

// RunContext is Run with cancellation: the context is polled every few
// hundred cycles and a cancellation surfaces as a wrapped ctx.Err(). A nil
// context means Background.
func (s *Simulator) RunContext(ctx context.Context) (Metrics, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sp := obs.StartSpan("simnet.run",
		obs.F("rate", s.cfg.InjectionRate),
		obs.F("warmup_cycles", s.cfg.WarmupCycles),
		obs.F("measure_cycles", s.cfg.MeasureCycles),
		obs.F("seed", s.cfg.Seed))
	total := s.cfg.WarmupCycles + s.cfg.MeasureCycles
	for c := 0; c < total; c++ {
		if c%256 == 0 {
			if err := ctx.Err(); err != nil {
				return Metrics{}, fmt.Errorf("simnet: run cancelled at cycle %d: %w", s.cycle, err)
			}
		}
		if c == s.cfg.WarmupCycles {
			s.measuring = true
			s.metrics.measureStart = s.cycle
		}
		s.step()
	}
	s.metrics.finalizeLinks(s.linkFlits, s.cfg)
	s.metrics.finalize(s.cfg, s.net)
	sp.End(
		obs.F("generated_messages", s.metrics.GeneratedMessages),
		obs.F("delivered_messages", s.metrics.DeliveredMessages),
		obs.F("lost_messages", s.metrics.LostMessages),
		obs.F("offered_flits", s.metrics.offeredFlits),
		obs.F("delivered_flits", s.metrics.deliveredFlits),
		obs.F("lost_flits", s.metrics.LostFlits),
		obs.F("offered_traffic", s.metrics.OfferedTraffic),
		obs.F("accepted_traffic", s.metrics.AcceptedTraffic),
		obs.F("avg_latency", s.metrics.AvgLatency),
		obs.F("saturated", s.metrics.Saturated()))
	if s.queueHist != nil {
		s.queueHist.Emit(obs.F("rate", s.cfg.InjectionRate), obs.F("seed", s.cfg.Seed))
	}
	return s.metrics, nil
}

// step advances the simulation one cycle.
func (s *Simulator) step() {
	s.processLinkEvents()
	s.generate()
	s.allocateRoutes()
	s.transferFlits()
	if s.measuring {
		s.sampleQueues()
	}
	s.cycle++
}

// timedLinkEvent is one entry of the failure/repair timeline.
type timedLinkEvent struct {
	cycle int64
	link  topology.Link
	down  bool
}

// processLinkEvents applies all timeline entries due at the current cycle.
func (s *Simulator) processLinkEvents() {
	for s.eventIdx < len(s.events) && s.events[s.eventIdx].cycle <= s.cycle {
		ev := s.events[s.eventIdx]
		s.eventIdx++
		d1 := directedLink{ev.link.A, ev.link.B}
		d2 := directedLink{ev.link.B, ev.link.A}
		if !ev.down {
			delete(s.deadLinks, d1)
			delete(s.deadLinks, d2)
			continue
		}
		s.deadLinks[d1] = true
		s.deadLinks[d2] = true
		// Worms holding a virtual channel of the dying link are lost.
		for _, dl := range []directedLink{d1, d2} {
			for _, c := range s.linkVCs[dl] {
				if m := c.buf.owner; m != nil {
					s.loseMessage(m)
				}
			}
		}
	}
}

// loseMessage drops every flit of m from every buffer, releases the
// virtual channels and routes it held, and accounts the loss.
func (s *Simulator) loseMessage(m *message) {
	if m.lost {
		return
	}
	m.lost = true
	for sw := range s.inputs {
		for _, in := range s.inputs[sw] {
			if in.routedMsg == m {
				in.route, in.sink, in.routedMsg = nil, false, nil
			}
			if in.owner == m {
				in.owner = nil
			}
			if in.len() == 0 {
				continue
			}
			kept := in.q[in.head:in.head:len(in.q)]
			changed := false
			for _, f := range in.q[in.head:] {
				if f.msg == m {
					changed = true
					continue
				}
				kept = append(kept, f)
			}
			if changed {
				in.q = append(in.q[:0], kept...)
				in.head = 0
			}
		}
	}
	if s.measuring {
		s.metrics.lostMessages++
		s.metrics.lostFlits += int64(m.size - m.delivered)
	}
}

// sampleQueues accumulates source-queue occupancy for the mean-queue
// metric (an early saturation indicator: queues grow without bound past
// the saturation point).
func (s *Simulator) sampleQueues() {
	total := int64(0)
	for sw := range s.inputs {
		for _, in := range s.inputs[sw] {
			if in.srcHost >= 0 {
				total += int64(in.len())
			}
		}
	}
	s.metrics.queueSamples++
	s.metrics.queueFlitsSum += total
	if s.queueHist != nil {
		s.queueHist.Observe(float64(total))
	}
}

// meanMessageFlits returns the expected message length under the
// configured size mix.
func (s *Simulator) meanMessageFlits() float64 {
	if s.cfg.BimodalFraction == 0 {
		return float64(s.cfg.MessageFlits)
	}
	return s.cfg.BimodalFraction*float64(s.cfg.BimodalFlits) +
		(1-s.cfg.BimodalFraction)*float64(s.cfg.MessageFlits)
}

// drawMessageSize samples the configured size distribution.
func (s *Simulator) drawMessageSize() int {
	if s.cfg.BimodalFraction > 0 && s.rng.Float64() < s.cfg.BimodalFraction {
		return s.cfg.BimodalFlits
	}
	return s.cfg.MessageFlits
}

// generate draws new messages at every host.
func (s *Simulator) generate() {
	meanFlits := s.meanMessageFlits()
	for sw := 0; sw < s.net.Switches(); sw++ {
		for _, in := range s.inputs[sw] {
			if in.srcHost < 0 {
				continue
			}
			rate := s.cfg.InjectionRate
			if s.cfg.RateScale != nil {
				rate *= s.cfg.RateScale[in.srcHost]
			}
			p := rate / meanFlits // message generation probability
			if p <= 0 || s.rng.Float64() >= p {
				continue
			}
			dst := s.pattern.Destination(in.srcHost, s.rng)
			m := &message{
				id:        s.nextMsgID,
				src:       in.srcHost,
				dst:       dst,
				dstSwitch: s.net.HostSwitch(dst),
				size:      s.drawMessageSize(),
				created:   s.cycle,
				injected:  -1,
			}
			s.nextMsgID++
			for seq := 0; seq < m.size; seq++ {
				in.push(flit{msg: m, seq: seq})
			}
			if s.measuring {
				s.metrics.generatedMessages++
				s.metrics.offeredFlits += int64(m.size)
			}
		}
	}
}

// allocateRoutes lets unrouted header flits at buffer heads acquire an
// output virtual channel (or the ejection port). Allocation order rotates
// per switch to avoid structural starvation.
func (s *Simulator) allocateRoutes() {
	for sw := 0; sw < s.net.Switches(); sw++ {
		ins := s.inputs[sw]
		if len(ins) == 0 {
			continue
		}
		start := s.rrInput[sw] % len(ins)
		s.rrInput[sw]++
		for k := 0; k < len(ins); k++ {
			in := ins[(start+k)%len(ins)]
			f, ok := in.headFlit()
			if !ok || !f.isHeader() || in.routedMsg == f.msg {
				continue
			}
			s.routeHeader(sw, in, f.msg)
		}
	}
}

// routeHeader tries to reserve the next channel for msg whose header sits
// at the head of `in` at switch sw.
func (s *Simulator) routeHeader(sw int, in *buffer, m *message) {
	if sw == m.dstSwitch {
		in.route, in.sink, in.routedMsg = nil, true, m
		return
	}
	hops := s.rt.NextHops(sw, m.dstSwitch, m.descending)
	// admissible reports whether a candidate VC can be acquired: free, and
	// under cut-through big enough to absorb the entire message.
	admissible := func(cand *vc) bool {
		if cand.buf.owner != nil {
			return false
		}
		if s.cfg.CutThrough && cand.buf.cap > 0 && cand.buf.cap < m.size {
			return false
		}
		return true
	}
	if s.cfg.DeterministicRouting {
		// Fixed path, fixed channel: wait for exactly one VC.
		if len(hops) == 0 {
			return
		}
		dl := directedLink{sw, hops[0].To}
		if s.deadLinks[dl] {
			// The only route crosses a failed link and the tables don't
			// know yet: the worm is stranded and dropped.
			s.loseMessage(m)
			return
		}
		cand := s.linkVCs[dl][0]
		if admissible(cand) {
			cand.buf.owner = m
			in.route, in.sink, in.routedMsg = cand, false, m
		}
		return
	}
	// Adaptive selection: first hop with a free VC, scanning hops and VCs
	// from a rotating offset so ties spread across channels.
	off := int(s.cycle) // deterministic, varies per cycle
	anyAlive := false
	for hi := 0; hi < len(hops); hi++ {
		h := hops[(hi+off)%len(hops)]
		dl := directedLink{sw, h.To}
		if s.deadLinks[dl] {
			continue
		}
		anyAlive = true
		vcs := s.linkVCs[dl]
		for vi := 0; vi < len(vcs); vi++ {
			cand := vcs[(vi+off)%len(vcs)]
			if admissible(cand) {
				cand.buf.owner = m
				in.route, in.sink, in.routedMsg = cand, false, m
				// The descending state must change only when the flit
				// actually moves; record the hop's phase on the route.
				return
			}
		}
	}
	if len(hops) > 0 && !anyAlive {
		// Every admissible continuation crosses a failed link: stranded.
		s.loseMessage(m)
	}
	// Blocked: try again next cycle.
}

// transferFlits moves at most one flit per output port.
func (s *Simulator) transferFlits() {
	for sw := 0; sw < s.net.Switches(); sw++ {
		for _, port := range s.ports[sw] {
			s.serve(sw, port)
		}
	}
}

// serve arbitrates one output port among the input buffers at sw routed to
// it and moves one flit if possible.
func (s *Simulator) serve(sw int, port *outPort) {
	ins := s.inputs[sw]
	n := len(ins)
	start := port.rrOffset % n
	port.rrOffset++
	for k := 0; k < n; k++ {
		in := ins[(start+k)%n]
		f, ok := in.headFlit()
		if !ok || in.routedMsg != f.msg {
			continue
		}
		if port.eject >= 0 {
			if !in.sink || f.msg.dst != port.eject {
				continue
			}
			s.deliver(in, f)
			return
		}
		if in.sink || in.route == nil || in.route.link != port.link || in.route.buf.full() {
			continue
		}
		s.forward(in, f)
		return
	}
}

// forward moves the head flit of `in` into its routed downstream VC.
func (s *Simulator) forward(in *buffer, f flit) {
	dst := in.route.buf
	in.pop()
	dst.push(f)
	if s.measuring {
		s.linkFlits[in.route.link]++
	}
	if f.isHeader() {
		if f.msg.injected < 0 {
			f.msg.injected = s.cycle
		}
		// Crossing a down link commits the worm to its down phase.
		if !s.rt.IsUp(in.route.link.from, in.route.link.to) {
			f.msg.descending = true
		}
	}
	if f.isTail() {
		s.releaseHead(in)
	}
}

// deliver consumes the head flit of `in` at its destination host.
func (s *Simulator) deliver(in *buffer, f flit) {
	in.pop()
	m := f.msg
	if f.isHeader() && m.injected < 0 {
		// Source and destination share a switch: the message never crossed
		// a link; treat ejection start as injection.
		m.injected = s.cycle
	}
	m.delivered++
	if s.measuring {
		s.metrics.deliveredFlits++
	}
	if f.isTail() {
		s.releaseHead(in)
		if s.measuring && m.created >= s.metrics.measureStart {
			s.metrics.deliveredMessages++
			s.metrics.totalLatency += s.cycle - m.injected
			s.metrics.totalQueueLatency += s.cycle - m.created
			s.metrics.latencySamples = append(s.metrics.latencySamples, s.cycle-m.injected)
			if s.cfg.HostCluster != nil {
				s.metrics.addClusterSample(s.cfg.HostCluster[m.src], int64(m.size), s.cycle-m.injected)
			}
		}
	}
}

// releaseHead clears the routing state of `in` after a tail departs and
// frees the VC ownership when `in` is a virtual-channel buffer.
func (s *Simulator) releaseHead(in *buffer) {
	if in.srcHost < 0 {
		in.owner = nil
	}
	in.route, in.sink, in.routedMsg = nil, false, nil
}

// Drain stops injection and keeps switching until the network empties or
// maxCycles elapse, returning whether it fully drained. For a
// deadlock-free configuration the drain always completes; tests use it as
// the liveness oracle.
func (s *Simulator) Drain(maxCycles int) bool {
	saved := s.cfg.InjectionRate
	s.cfg.InjectionRate = 0
	defer func() { s.cfg.InjectionRate = saved }()
	for c := 0; c < maxCycles; c++ {
		if s.inflight() == 0 {
			return true
		}
		s.step()
	}
	return s.inflight() == 0
}

// inflight counts flits in every buffer.
func (s *Simulator) inflight() int {
	total := 0
	for sw := range s.inputs {
		for _, in := range s.inputs[sw] {
			total += in.len()
		}
	}
	return total
}
