package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"commsched/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedClock returns a registry clock that advances by step per call.
func fixedClock(start time.Time, step time.Duration) func() time.Time {
	t := start
	return func() time.Time {
		now := t
		t = t.Add(step)
		return now
	}
}

// feedRegistry ingests a deterministic record mix covering every family.
func feedRegistry(g *Registry) {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	g.Emit(obs.Record{Time: base, Kind: "event", Name: "simnet.sweep_point",
		Fields: []obs.Field{obs.F("point", 1), obs.F("rate", 0.05)}})
	g.Emit(obs.Record{Time: base, Kind: "event", Name: "simnet.sweep_point",
		Fields: []obs.Field{obs.F("point", 2), obs.F("rate", 0.10)}})
	g.Emit(obs.Record{Time: base, Kind: "event", Name: "distance.pairs",
		Fields: []obs.Field{obs.F("value", int64(120))}})
	g.Emit(obs.Record{Time: base, Kind: "span", Name: "simnet.run", Dur: 250 * time.Millisecond})
	g.Emit(obs.Record{Time: base, Kind: "span", Name: "simnet.run", Dur: 750 * time.Millisecond})
	g.Emit(obs.Record{Time: base, Kind: "span", Name: "search.tabu", Dur: 2 * time.Second})
	g.Emit(obs.Record{Time: base, Kind: "hist", Name: "simnet.queue_occupancy",
		Fields: []obs.Field{
			obs.F("bounds", []float64{0, 1, 2, 4}),
			obs.F("counts", []int64{5, 3, 2, 1, 1}),
			obs.F("count", int64(12)),
			obs.F("sum", 19.0),
			obs.F("mean", 19.0/12),
		}})
	for done := int64(1); done <= 3; done++ {
		g.Emit(obs.Record{Time: base, Kind: "event", Name: "progress",
			Fields: []obs.Field{obs.F("task", "simnet.sweep"), obs.F("done", done), obs.F("total", int64(9))}})
	}
	g.Emit(obs.Record{Time: base, Kind: "event", Name: "run.manifest",
		Fields: []obs.Field{obs.F("command", "paperfigs"), obs.F("seed_sim", int64(7))}})
}

// TestWritePrometheusGolden pins the exact /metrics exposition for a
// fixed record mix: sorted families, deterministic float formatting,
// cumulative histogram buckets.
func TestWritePrometheusGolden(t *testing.T) {
	g := NewRegistry()
	// Deterministic clock: creation, then one tick per progress record,
	// then the exposition's uptime read.
	g.now = fixedClock(time.Date(2026, 1, 2, 3, 0, 0, 0, time.UTC), 10*time.Second)
	g.started = g.now()
	feedRegistry(g)

	var buf bytes.Buffer
	if err := g.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (rerun with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
	// The exposition must be stable across identical registries.
	var buf2 bytes.Buffer
	g2 := NewRegistry()
	g2.now = fixedClock(time.Date(2026, 1, 2, 3, 0, 0, 0, time.UTC), 10*time.Second)
	g2.started = g2.now()
	feedRegistry(g2)
	if err := g2.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two registries with identical contents produced different expositions")
	}
}

func TestProgressETA(t *testing.T) {
	g := NewRegistry()
	g.now = fixedClock(time.Unix(1000, 0), 10*time.Second)
	g.started = g.now()
	// Ticks: first progress at t=1010 (start), second at t=1020.
	g.Emit(obs.Record{Kind: "event", Name: "progress",
		Fields: []obs.Field{obs.F("task", "sweep"), obs.F("done", int64(1)), obs.F("total", int64(5))}})
	g.Emit(obs.Record{Kind: "event", Name: "progress",
		Fields: []obs.Field{obs.F("task", "sweep"), obs.F("done", int64(2)), obs.F("total", int64(5))}})
	ps := g.Progress()
	if len(ps) != 1 {
		t.Fatalf("got %d tasks, want 1", len(ps))
	}
	st := ps[0]
	if st.Done != 2 || st.Total != 5 {
		t.Fatalf("done/total = %d/%d, want 2/5", st.Done, st.Total)
	}
	if st.Ratio != 0.4 {
		t.Errorf("ratio = %v, want 0.4", st.Ratio)
	}
	// 2 done in 10s elapsed -> 3 remaining at 5 s/item = 15s.
	if st.ETASeconds != 15 {
		t.Errorf("eta = %v, want 15", st.ETASeconds)
	}

	// A restart (done going backwards) resets the task's clock.
	g.Emit(obs.Record{Kind: "event", Name: "progress",
		Fields: []obs.Field{obs.F("task", "sweep"), obs.F("done", int64(1)), obs.F("total", int64(5))}})
	st = g.Progress()[0]
	if st.Done != 1 {
		t.Fatalf("after restart done = %d, want 1", st.Done)
	}
	if st.ETASeconds != -1 {
		t.Errorf("after restart eta = %v, want -1 (no elapsed time yet)", st.ETASeconds)
	}
}

func TestRunsJSON(t *testing.T) {
	g := NewRegistry()
	feedRegistry(g)
	data, err := g.RunsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Manifest map[string]any  `json:"manifest"`
		Progress []ProgressState `json:"progress"`
	}
	if err := json.Unmarshal(data, &payload); err != nil {
		t.Fatalf("runs payload is not valid JSON: %v\n%s", err, data)
	}
	if payload.Manifest["command"] != "paperfigs" {
		t.Errorf("manifest command = %v, want paperfigs", payload.Manifest["command"])
	}
	if len(payload.Progress) != 1 || payload.Progress[0].Task != "simnet.sweep" {
		t.Errorf("progress = %+v, want the simnet.sweep task", payload.Progress)
	}

	// Before any records, /runs must still be valid JSON with an empty
	// progress array and no manifest.
	empty := NewRegistry()
	data, err = empty.RunsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &payload); err != nil {
		t.Fatalf("empty runs payload invalid: %v", err)
	}
}

func TestRegistryIgnoresMalformedHist(t *testing.T) {
	g := NewRegistry()
	g.Emit(obs.Record{Kind: "hist", Name: "bad",
		Fields: []obs.Field{obs.F("bounds", []float64{1, 2}), obs.F("counts", []int64{1})}})
	var buf bytes.Buffer
	if err := g.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("commsched_hist_bucket")) {
		t.Error("malformed hist flush leaked into the exposition")
	}
}

func TestRegistryRunstateStatus(t *testing.T) {
	g := NewRegistry()
	if g.Runstate() != nil {
		t.Fatal("runstate must start nil")
	}
	g.Emit(obs.Record{Kind: "event", Name: "runstate.status", Time: time.Unix(0, 0), Fields: []obs.Field{
		obs.F("dir", "/tmp/ckpt"),
		obs.F("units", 12),
		obs.F("replayed", int64(5)),
		obs.F("recorded", int64(7)),
		obs.F("skipped_partial", int64(0)),
	}})
	rs := g.Runstate()
	if rs == nil || rs["dir"] != "/tmp/ckpt" {
		t.Fatalf("runstate = %v", rs)
	}
	data, err := g.RunsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var payload map[string]any
	if err := json.Unmarshal(data, &payload); err != nil {
		t.Fatal(err)
	}
	inner, ok := payload["runstate"].(map[string]any)
	if !ok {
		t.Fatalf("/runs payload missing runstate: %s", data)
	}
	if inner["replayed"] != float64(5) {
		t.Fatalf("replayed = %v", inner["replayed"])
	}
}

func TestRegistryLeaseAndRunstateGauges(t *testing.T) {
	g := NewRegistry()
	if g.Lease() != nil {
		t.Fatal("lease must start nil")
	}
	g.Emit(obs.Record{Kind: "event", Name: "runstate.status", Time: time.Unix(0, 0), Fields: []obs.Field{
		obs.F("dir", "/tmp/ckpt"),
		obs.F("units", 12),
		obs.F("conflicts", int64(2)),
		obs.F("determinism_violations", int64(0)),
	}})
	g.Emit(obs.Record{Kind: "event", Name: "lease.status", Time: time.Unix(1, 0), Fields: []obs.Field{
		obs.F("worker", "w1"),
		obs.F("acquired", int64(9)),
		obs.F("stolen", int64(3)),
		obs.F("reclaimed", int64(1)),
		obs.F("spec_wins", int64(0)),
	}})

	ls := g.Lease()
	if ls == nil || ls["worker"] != "w1" {
		t.Fatalf("lease snapshot = %v", ls)
	}

	var buf bytes.Buffer
	if err := g.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exposition := buf.String()
	for _, want := range []string{
		"# TYPE commsched_runstate gauge\n",
		"commsched_runstate{field=\"units\"} 12\n",
		"commsched_runstate{field=\"conflicts\"} 2\n",
		"commsched_runstate{field=\"determinism_violations\"} 0\n",
		"# TYPE commsched_lease gauge\n",
		"commsched_lease{field=\"acquired\"} 9\n",
		"commsched_lease{field=\"stolen\"} 3\n",
		"commsched_lease{field=\"reclaimed\"} 1\n",
		"commsched_lease{field=\"spec_wins\"} 0\n",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The worker ID is a string, not a gauge.
	if strings.Contains(exposition, "field=\"worker\"") {
		t.Error("string field leaked into the lease gauge family")
	}

	// Both snapshots ride along on /runs.
	data, err := g.RunsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Lease map[string]any `json:"lease"`
	}
	if err := json.Unmarshal(data, &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Lease["stolen"] != float64(3) {
		t.Fatalf("/runs lease.stolen = %v", payload.Lease["stolen"])
	}
	// A later status event replaces, never accumulates.
	g.Emit(obs.Record{Kind: "event", Name: "lease.status", Time: time.Unix(2, 0), Fields: []obs.Field{
		obs.F("worker", "w1"),
		obs.F("acquired", int64(10)),
	}})
	buf.Reset()
	if err := g.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "commsched_lease{field=\"acquired\"} 10\n") {
		t.Errorf("lease gauge did not track the latest status event")
	}
}
