// Package telemetry turns the obs record stream into live, inspectable
// state for long-running runs: a snapshotting metrics registry with a
// Prometheus text exposition (/metrics), a Server-Sent-Events fan-out of
// raw records (/events), run manifests plus progress/ETA gauges (/runs),
// and a Chrome trace-event recorder (-trace) whose output loads in
// Perfetto / chrome://tracing.
//
// The package sits strictly downstream of obs: instrumented code keeps
// emitting through the one pluggable sink, and telemetry components are
// just sinks composed with obs.Fanout. With no -serve/-trace flag nothing
// here is constructed and the obs disabled path (one atomic load) is
// untouched.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"commsched/internal/obs"
)

// Registry aggregates the record stream into metric families that can be
// exposed at any moment, concurrently with ingestion. It is an obs.Sink.
//
// The mapping from records to families is:
//
//   - every record increments commsched_records_total{kind,name}
//   - spans accumulate commsched_span_duration_seconds_{count,sum}{name}
//   - events carrying a numeric "value" field set commsched_value{name}
//   - "hist" records snapshot commsched_hist_{bucket,sum,count}{name}
//   - "progress" events update commsched_progress_*{task} and the ETA
//   - "run.manifest" events are retained verbatim for /runs
//   - "runstate.status" events (the durable checkpoint store's state) are
//     retained verbatim for /runs, so an operator can see whether a run
//     is resumable and how many units it has replayed; their numeric
//     fields also populate the commsched_runstate gauge family
//   - "lease.status" events (the distributed pool's counters) are
//     retained for /runs and populate the commsched_lease gauge family
type Registry struct {
	// now is the clock, swappable in tests for a deterministic ETA.
	now func() time.Time

	mu       sync.Mutex
	started  time.Time
	records  map[[2]string]int64 // {kind, name} -> count
	spans    map[string]*spanStats
	values   map[string]float64
	hists    map[string]*histSnapshot
	progress map[string]*ProgressState
	manifest map[string]any
	runstate map[string]any
	lease    map[string]any
	// runstateGauges/leaseGauges hold the numeric fields of the latest
	// runstate.status / lease.status events, exposed as dedicated metric
	// families so chaos runs are auditable straight from /metrics.
	runstateGauges map[string]float64
	leaseGauges    map[string]float64
	// RED/SLO latency histograms with per-bucket exemplars (see slo.go).
	httpLatency  map[string]*latencySeries // by endpoint
	stateLatency map[string]*latencySeries // by job state
}

type spanStats struct {
	count int64
	sum   float64 // seconds
}

type histSnapshot struct {
	bounds []float64
	counts []int64
	count  int64
	sum    float64
}

// ProgressState is the live view of one named long-running task, derived
// from its "progress" events.
type ProgressState struct {
	// Task names the tracked loop ("simnet.sweep", "search.tabu", ...).
	Task string `json:"task"`
	// Done and Total are the last reported item counts.
	Done  int64 `json:"done"`
	Total int64 `json:"total"`
	// Ratio is Done/Total in [0,1] (0 when Total is unknown).
	Ratio float64 `json:"ratio"`
	// ETASeconds extrapolates the remaining time from the observed rate;
	// negative when no estimate is possible yet.
	ETASeconds float64 `json:"eta_seconds"`
	// StartedAt and UpdatedAt bracket the task's observed lifetime.
	StartedAt time.Time `json:"started_at"`
	UpdatedAt time.Time `json:"updated_at"`
}

// NewRegistry returns an empty registry ready to ingest records.
func NewRegistry() *Registry {
	r := &Registry{now: time.Now}
	r.started = r.now()
	r.reset()
	return r
}

func (g *Registry) reset() {
	g.records = make(map[[2]string]int64)
	g.spans = make(map[string]*spanStats)
	g.values = make(map[string]float64)
	g.hists = make(map[string]*histSnapshot)
	g.progress = make(map[string]*ProgressState)
	g.manifest = nil
	g.runstate = nil
	g.lease = nil
	g.runstateGauges = make(map[string]float64)
	g.leaseGauges = make(map[string]float64)
	g.httpLatency = make(map[string]*latencySeries)
	g.stateLatency = make(map[string]*latencySeries)
}

// Emit implements obs.Sink.
func (g *Registry) Emit(r obs.Record) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.records[[2]string{r.Kind, r.Name}]++
	switch r.Kind {
	case "span":
		st := g.spans[r.Name]
		if st == nil {
			st = &spanStats{}
			g.spans[r.Name] = st
		}
		st.count++
		st.sum += r.Dur.Seconds()
		if r.Name == "http.request" {
			if ep, ok := fieldString(r, "endpoint"); ok && ep != "" {
				g.observeLatency(g.httpLatency, ep, r.Dur.Seconds(), r)
			}
		}
	case "hist":
		g.ingestHist(r)
	}
	switch r.Name {
	case "service.latency":
		if state, ok := fieldString(r, "state"); ok && state != "" {
			if secs, ok := fieldFloat(r, "seconds"); ok {
				g.observeLatency(g.stateLatency, state, secs, r)
			}
		}
	case "progress":
		g.ingestProgress(r)
	case "run.manifest":
		g.manifest = obs.RecordObject(r)
	case "runstate.status":
		g.runstate = obs.RecordObject(r)
		collectNumericFields(r, g.runstateGauges)
	case "lease.status":
		g.lease = obs.RecordObject(r)
		collectNumericFields(r, g.leaseGauges)
	default:
		if v, ok := fieldFloat(r, "value"); ok {
			g.values[r.Name] = v
		}
	}
}

// ingestHist stores the latest flushed histogram under its name (callers
// flush cumulative histograms, so last-wins is the current snapshot).
func (g *Registry) ingestHist(r obs.Record) {
	h := &histSnapshot{}
	for _, f := range r.Fields {
		switch f.Key {
		case "bounds":
			if b, ok := f.Value.([]float64); ok {
				h.bounds = b
			}
		case "counts":
			if c, ok := f.Value.([]int64); ok {
				h.counts = c
			}
		case "count":
			if v, ok := toFloat(f.Value); ok {
				h.count = int64(v)
			}
		case "sum":
			if v, ok := toFloat(f.Value); ok {
				h.sum = v
			}
		}
	}
	if len(h.counts) != len(h.bounds)+1 {
		return // malformed flush; drop rather than expose garbage
	}
	g.hists[r.Name] = h
}

func (g *Registry) ingestProgress(r obs.Record) {
	task, _ := fieldString(r, "task")
	if task == "" {
		return
	}
	done, _ := fieldFloat(r, "done")
	total, _ := fieldFloat(r, "total")
	now := g.now()
	st := g.progress[task]
	if st == nil || int64(done) < st.Done {
		// First sight, or the task restarted (done went backwards).
		st = &ProgressState{Task: task, StartedAt: now}
		g.progress[task] = st
	}
	st.Done = int64(done)
	st.Total = int64(total)
	st.UpdatedAt = now
	st.Ratio = 0
	st.ETASeconds = -1
	if st.Total > 0 {
		st.Ratio = float64(st.Done) / float64(st.Total)
	}
	if elapsed := st.UpdatedAt.Sub(st.StartedAt).Seconds(); st.Done > 0 && st.Total >= st.Done && elapsed > 0 {
		st.ETASeconds = elapsed * float64(st.Total-st.Done) / float64(st.Done)
	}
}

// Progress returns the tracked tasks sorted by name.
func (g *Registry) Progress() []ProgressState {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]ProgressState, 0, len(g.progress))
	for _, st := range g.progress {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Task < out[j].Task })
	return out
}

// Manifest returns the last ingested run.manifest record (nil before the
// producing command emitted one).
func (g *Registry) Manifest() map[string]any {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.manifest == nil {
		return nil
	}
	out := make(map[string]any, len(g.manifest))
	for k, v := range g.manifest {
		out[k] = v
	}
	return out
}

// Runstate returns the last ingested runstate.status record — the
// durable checkpoint store's counters — or nil when the run is not
// checkpointed.
func (g *Registry) Runstate() map[string]any {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.runstate == nil {
		return nil
	}
	out := make(map[string]any, len(g.runstate))
	for k, v := range g.runstate {
		out[k] = v
	}
	return out
}

// Lease returns the last ingested lease.status record — the distributed
// pool's counters — or nil when the run is not distributed.
func (g *Registry) Lease() map[string]any {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.lease == nil {
		return nil
	}
	out := make(map[string]any, len(g.lease))
	for k, v := range g.lease {
		out[k] = v
	}
	return out
}

// RunsJSON renders the /runs payload: the run manifest (when seen), the
// durable-run checkpoint state (when the run is resumable), the lease
// pool state (when the run is distributed), plus the live progress
// table.
func (g *Registry) RunsJSON() ([]byte, error) {
	payload := struct {
		Manifest map[string]any  `json:"manifest,omitempty"`
		Runstate map[string]any  `json:"runstate,omitempty"`
		Lease    map[string]any  `json:"lease,omitempty"`
		Progress []ProgressState `json:"progress"`
	}{Manifest: g.Manifest(), Runstate: g.Runstate(), Lease: g.Lease(), Progress: g.Progress()}
	if payload.Progress == nil {
		payload.Progress = []ProgressState{}
	}
	return json.MarshalIndent(payload, "", "  ")
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format, version 0.0.4. Families and series are emitted in sorted order,
// so two registries with the same contents produce byte-identical output
// (the golden-test and diff-friendly property).
func (g *Registry) WritePrometheus(w io.Writer) error {
	return g.writeExposition(w, false)
}

// writeExposition is the shared renderer behind WritePrometheus (bare)
// and WriteOpenMetrics (exemplars on latency buckets; the caller appends
// the "# EOF" terminator).
func (g *Registry) writeExposition(w io.Writer, exemplars bool) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	var b strings.Builder

	b.WriteString("# HELP commsched_records_total Observability records ingested, by kind and instrumentation point.\n")
	b.WriteString("# TYPE commsched_records_total counter\n")
	forSortedKeys2(g.records, func(k [2]string, v int64) {
		fmt.Fprintf(&b, "commsched_records_total{kind=%q,name=%q} %d\n", k[0], k[1], v)
	})

	b.WriteString("# HELP commsched_span_duration_seconds Cumulative wall time spent inside each span.\n")
	b.WriteString("# TYPE commsched_span_duration_seconds counter\n")
	forSortedKeys(g.spans, func(name string, st *spanStats) {
		fmt.Fprintf(&b, "commsched_span_duration_seconds_count{name=%q} %d\n", name, st.count)
		fmt.Fprintf(&b, "commsched_span_duration_seconds_sum{name=%q} %s\n", name, formatFloat(st.sum))
	})

	if len(g.values) > 0 {
		b.WriteString("# HELP commsched_value Last numeric value reported by a value-carrying event.\n")
		b.WriteString("# TYPE commsched_value gauge\n")
		forSortedKeys(g.values, func(name string, v float64) {
			fmt.Fprintf(&b, "commsched_value{name=%q} %s\n", name, formatFloat(v))
		})
	}

	if len(g.hists) > 0 {
		b.WriteString("# HELP commsched_hist Latest flushed fixed-bucket histogram, by instrumentation point.\n")
		b.WriteString("# TYPE commsched_hist histogram\n")
		forSortedKeys(g.hists, func(name string, h *histSnapshot) {
			cum := int64(0)
			for i, c := range h.counts {
				cum += c
				le := "+Inf"
				if i < len(h.bounds) {
					le = formatFloat(h.bounds[i])
				}
				fmt.Fprintf(&b, "commsched_hist_bucket{name=%q,le=%q} %d\n", name, le, cum)
			}
			fmt.Fprintf(&b, "commsched_hist_sum{name=%q} %s\n", name, formatFloat(h.sum))
			fmt.Fprintf(&b, "commsched_hist_count{name=%q} %d\n", name, h.count)
		})
	}

	if len(g.runstateGauges) > 0 {
		b.WriteString("# HELP commsched_runstate Durable checkpoint store counters (latest runstate.status event): units, replayed, recorded, hits, skipped_partial torn lines, merge conflicts, determinism_violations.\n")
		b.WriteString("# TYPE commsched_runstate gauge\n")
		forSortedKeys(g.runstateGauges, func(field string, v float64) {
			fmt.Fprintf(&b, "commsched_runstate{field=%q} %s\n", field, formatFloat(v))
		})
	}

	if len(g.leaseGauges) > 0 {
		b.WriteString("# HELP commsched_lease Distributed lease pool counters (latest lease.status event): acquisitions, steals, reclaims, losses, conflicts, renewals, executions, replays, speculation.\n")
		b.WriteString("# TYPE commsched_lease gauge\n")
		forSortedKeys(g.leaseGauges, func(field string, v float64) {
			fmt.Fprintf(&b, "commsched_lease{field=%q} %s\n", field, formatFloat(v))
		})
	}

	writeLatencyFamily(&b, "commsched_http_request_duration_seconds",
		"HTTP request latency by endpoint, from http.request spans.",
		"endpoint", g.httpLatency, exemplars)
	writeLatencyFamily(&b, "commsched_job_state_duration_seconds",
		"Time jobs spent in each lifecycle state, from service.latency events.",
		"state", g.stateLatency, exemplars)

	if len(g.progress) > 0 {
		b.WriteString("# HELP commsched_progress_done Items completed by a tracked long-running task.\n")
		b.WriteString("# TYPE commsched_progress_done gauge\n")
		forSortedKeys(g.progress, func(task string, st *ProgressState) {
			fmt.Fprintf(&b, "commsched_progress_done{task=%q} %d\n", task, st.Done)
		})
		b.WriteString("# HELP commsched_progress_total Items the tracked task expects in total.\n")
		b.WriteString("# TYPE commsched_progress_total gauge\n")
		forSortedKeys(g.progress, func(task string, st *ProgressState) {
			fmt.Fprintf(&b, "commsched_progress_total{task=%q} %d\n", task, st.Total)
		})
		b.WriteString("# HELP commsched_progress_ratio Completed fraction of the tracked task, in [0,1].\n")
		b.WriteString("# TYPE commsched_progress_ratio gauge\n")
		forSortedKeys(g.progress, func(task string, st *ProgressState) {
			fmt.Fprintf(&b, "commsched_progress_ratio{task=%q} %s\n", task, formatFloat(st.Ratio))
		})
		b.WriteString("# HELP commsched_progress_eta_seconds Extrapolated remaining seconds (-1 before an estimate exists).\n")
		b.WriteString("# TYPE commsched_progress_eta_seconds gauge\n")
		forSortedKeys(g.progress, func(task string, st *ProgressState) {
			fmt.Fprintf(&b, "commsched_progress_eta_seconds{task=%q} %s\n", task, formatFloat(st.ETASeconds))
		})
	}

	b.WriteString("# HELP commsched_uptime_seconds Seconds since the telemetry registry was created.\n")
	b.WriteString("# TYPE commsched_uptime_seconds gauge\n")
	fmt.Fprintf(&b, "commsched_uptime_seconds %s\n", formatFloat(g.now().Sub(g.started).Seconds()))

	_, err := io.WriteString(w, b.String())
	return err
}

// forSortedKeys iterates a string-keyed map in sorted key order.
func forSortedKeys[V any](m map[string]V, fn func(string, V)) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fn(k, m[k])
	}
}

// forSortedKeys2 iterates a {kind,name}-keyed map sorted by name, then kind.
func forSortedKeys2[V any](m map[[2]string]V, fn func([2]string, V)) {
	keys := make([][2]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][1] != keys[j][1] {
			return keys[i][1] < keys[j][1]
		}
		return keys[i][0] < keys[j][0]
	})
	for _, k := range keys {
		fn(k, m[k])
	}
}

// formatFloat renders a float compactly and deterministically: integers
// print without a fraction, everything else with %g.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// collectNumericFields copies every numeric field of the record into
// dst, keyed by field name (status events are cumulative snapshots, so
// last-wins is the current state).
func collectNumericFields(r obs.Record, dst map[string]float64) {
	for _, f := range r.Fields {
		if _, isString := f.Value.(string); isString {
			continue
		}
		if v, ok := toFloat(f.Value); ok {
			dst[f.Key] = v
		}
	}
}

// fieldFloat extracts a numeric field by key.
func fieldFloat(r obs.Record, key string) (float64, bool) {
	for _, f := range r.Fields {
		if f.Key == key {
			return toFloat(f.Value)
		}
	}
	return 0, false
}

// fieldString extracts a string field by key.
func fieldString(r obs.Record, key string) (string, bool) {
	for _, f := range r.Fields {
		if f.Key == key {
			s, ok := f.Value.(string)
			return s, ok
		}
	}
	return "", false
}

// toFloat widens the scalar types instrumentation actually emits.
func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int32:
		return float64(x), true
	case int64:
		return float64(x), true
	case uint:
		return float64(x), true
	case uint64:
		return float64(x), true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}
