package telemetry

import (
	"encoding/json"
	"sort"
	"sync"

	"commsched/internal/obs"
)

// Traces is a bounded in-memory store of recent traces, keyed by trace
// ID — the sink behind the server's GET /trace/{id} view. It retains at
// most maxTraces traces (oldest-first eviction by first sight) and at
// most maxRecords records per trace (later records are counted, not
// stored, so a runaway trace cannot grow without bound). It is an
// obs.Sink; records without a trace ID are ignored.
type Traces struct {
	mu        sync.Mutex
	maxTraces int
	maxRecs   int
	order     []string // trace IDs in first-seen order, for eviction
	traces    map[string]*traceBuf
}

type traceBuf struct {
	records []map[string]any
	dropped int
}

// Default capacity bounds for the server-embedded store: enough for a
// load test's worth of jobs without letting /trace memory grow unbounded.
const (
	defaultMaxTraces       = 256
	defaultMaxTraceRecords = 4096
)

// NewTraces returns a store bounded to maxTraces traces of maxRecords
// records each; non-positive arguments select the defaults.
func NewTraces(maxTraces, maxRecords int) *Traces {
	if maxTraces <= 0 {
		maxTraces = defaultMaxTraces
	}
	if maxRecords <= 0 {
		maxRecords = defaultMaxTraceRecords
	}
	return &Traces{maxTraces: maxTraces, maxRecs: maxRecords, traces: make(map[string]*traceBuf)}
}

// Emit implements obs.Sink.
func (t *Traces) Emit(r obs.Record) {
	if r.Trace.IsZero() {
		return
	}
	id := r.Trace.String()
	obj := obs.RecordObject(r)
	t.mu.Lock()
	defer t.mu.Unlock()
	buf := t.traces[id]
	if buf == nil {
		if len(t.order) >= t.maxTraces {
			evict := t.order[0]
			t.order = t.order[1:]
			delete(t.traces, evict)
		}
		buf = &traceBuf{}
		t.traces[id] = buf
		t.order = append(t.order, id)
	}
	if len(buf.records) >= t.maxRecs {
		buf.dropped++
		return
	}
	buf.records = append(buf.records, obj)
}

// IDs returns the retained trace IDs, most recent first.
func (t *Traces) IDs() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.order))
	for i, id := range t.order {
		out[len(t.order)-1-i] = id
	}
	return out
}

// TraceJSON renders one trace as a JSON document: the trace ID, its
// records sorted by timestamp (ties keep arrival order), and how many
// records the per-trace cap dropped. ok is false for an unknown ID.
func (t *Traces) TraceJSON(id string) (data []byte, ok bool) {
	t.mu.Lock()
	buf := t.traces[id]
	var recs []map[string]any
	var dropped int
	if buf != nil {
		recs = make([]map[string]any, len(buf.records))
		copy(recs, buf.records)
		dropped = buf.dropped
	}
	t.mu.Unlock()
	if buf == nil {
		return nil, false
	}
	sort.SliceStable(recs, func(i, j int) bool {
		ti, _ := recs[i]["ts"].(string)
		tj, _ := recs[j]["ts"].(string)
		return ti < tj
	})
	payload := struct {
		Trace   string           `json:"trace"`
		Records []map[string]any `json:"records"`
		Dropped int              `json:"dropped,omitempty"`
	}{Trace: id, Records: recs, Dropped: dropped}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		return nil, false
	}
	return data, true
}
