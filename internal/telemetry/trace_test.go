package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"commsched/internal/obs"
)

// tracePayload mirrors the Chrome trace-event file schema.
type tracePayload struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		S    string         `json:"s"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// buildTrace feeds a Trace a mix of worker spans, nested and overlapping
// anonymous spans, a periodic simulator sample, a histogram flush, and a
// plain event, then closes it into buf.
func buildTrace(t *testing.T, buf *bytes.Buffer) tracePayload {
	t.Helper()
	tr := NewTrace(buf)
	base := time.Unix(100, 0)
	at := func(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }
	span := func(name string, startMS, durMS int, fields ...obs.Field) {
		tr.Emit(obs.Record{Kind: "span", Name: name, Time: at(startMS),
			Dur: time.Duration(durMS) * time.Millisecond, Fields: fields})
	}
	span("outer", 0, 10)
	span("inner", 2, 3)    // nests inside outer on the same lane
	span("overlap", 4, 8)  // ends after outer: needs its own lane
	span("item", 1, 2, obs.F("worker", 0))
	span("item", 5, 2, obs.F("worker", 0))
	span("item", 1, 4, obs.F("worker", 1))
	tr.Emit(obs.Record{Kind: "event", Name: "simnet.sample", Time: at(3),
		Fields: []obs.Field{obs.F("rate", 0.125), obs.F("queue_flits", int64(7)), obs.F("active_worms", int64(2))}})
	tr.Emit(obs.Record{Kind: "hist", Name: "simnet.queue_occupancy", Time: at(6),
		Fields: []obs.Field{obs.F("mean", 1.5), obs.F("count", int64(12))}})
	tr.Emit(obs.Record{Kind: "event", Name: "search.restart", Time: at(7),
		Fields: []obs.Field{obs.F("restart", int64(1))}})
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var p tracePayload
	if err := json.Unmarshal(buf.Bytes(), &p); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	return p
}

// TestTraceSchema validates the structural invariants a trace viewer
// relies on: valid JSON, known phases, monotonically non-decreasing
// timestamps, and — the one B/E semantics require — properly matched
// begin/end pairs per (pid, tid) lane.
func TestTraceSchema(t *testing.T) {
	var buf bytes.Buffer
	p := buildTrace(t, &buf)

	if p.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", p.DisplayTimeUnit)
	}
	if len(p.TraceEvents) == 0 {
		t.Fatal("no trace events emitted")
	}

	valid := map[string]bool{"B": true, "E": true, "C": true, "i": true, "M": true}
	prevTs := -1.0
	stacks := map[[2]int][]string{} // (pid,tid) -> open span names
	begins, ends := 0, 0
	for i, ev := range p.TraceEvents {
		if ev.Name == "" || !valid[ev.Ph] {
			t.Fatalf("event %d: missing name or bad phase %+v", i, ev)
		}
		if ev.Ph == "M" {
			continue
		}
		if ev.Ts < 0 {
			t.Fatalf("event %d (%s): negative ts %v", i, ev.Name, ev.Ts)
		}
		if ev.Ts < prevTs {
			t.Fatalf("event %d (%s): ts %v decreases from %v", i, ev.Name, ev.Ts, prevTs)
		}
		prevTs = ev.Ts
		key := [2]int{ev.Pid, ev.Tid}
		switch ev.Ph {
		case "B":
			begins++
			stacks[key] = append(stacks[key], ev.Name)
		case "E":
			ends++
			st := stacks[key]
			if len(st) == 0 {
				t.Fatalf("event %d: E %q on tid %d with no open span", i, ev.Name, ev.Tid)
			}
			if top := st[len(st)-1]; top != ev.Name {
				t.Fatalf("event %d: E %q closes open span %q on tid %d", i, ev.Name, top, ev.Tid)
			}
			stacks[key] = st[:len(st)-1]
		case "i":
			if ev.S == "" {
				t.Errorf("event %d: instant %q without a scope", i, ev.Name)
			}
		}
	}
	if begins != 6 || ends != 6 {
		t.Errorf("B/E counts = %d/%d, want 6/6", begins, ends)
	}
	for key, st := range stacks {
		if len(st) != 0 {
			t.Errorf("lane %v left %d spans open: %v", key, len(st), st)
		}
	}
}

// TestTraceLanes checks the lane assignment: worker spans land on their
// worker's named thread, overlapping anonymous spans get distinct lanes,
// and counter tracks exist for the simulator samples.
func TestTraceLanes(t *testing.T) {
	var buf bytes.Buffer
	p := buildTrace(t, &buf)

	laneNames := map[int]string{}
	tidOf := map[string]int{} // B-event name+start -> tid
	counters := map[string]bool{}
	for _, ev := range p.TraceEvents {
		switch ev.Ph {
		case "M":
			if name, ok := ev.Args["name"].(string); ok {
				laneNames[ev.Tid] = name
			}
		case "B":
			tidOf[fmt.Sprintf("%s@%v", ev.Name, ev.Ts)] = ev.Tid
		case "C":
			counters[ev.Name] = true
		}
	}
	// Worker spans: tid is 1+worker with a "par worker N" label.
	if tid := tidOf["item@1000"]; tid != 1 && tid != 2 {
		t.Errorf("worker item span on tid %d, want a worker lane (1 or 2)", tid)
	}
	for w := 0; w <= 1; w++ {
		if got := laneNames[1+w]; got != fmt.Sprintf("par worker %d", w) {
			t.Errorf("tid %d label = %q, want par worker %d", 1+w, got, w)
		}
	}
	// outer and overlap cannot share a lane (overlap outlives outer).
	if a, b := tidOf["outer@0"], tidOf["overlap@4000"]; a == b {
		t.Errorf("outer and overlap share tid %d despite overlapping lifetimes", a)
	}
	// inner nests inside outer on the same lane.
	if a, b := tidOf["outer@0"], tidOf["inner@2000"]; a != b {
		t.Errorf("inner (tid %d) did not nest into outer's lane (tid %d)", b, a)
	}
	wantCounters := []string{
		"simnet.queue_flits rate=0.125",
		"simnet.active_worms rate=0.125",
		"simnet.queue_occupancy",
	}
	for _, name := range wantCounters {
		if !counters[name] {
			t.Errorf("missing counter track %q (have %v)", name, counters)
		}
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

func TestTraceClosePropagatesWriteError(t *testing.T) {
	tr := NewTrace(failWriter{})
	tr.Emit(obs.Record{Kind: "event", Name: "x", Time: time.Unix(1, 0)})
	if err := tr.Close(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Errorf("Close error = %v, want the writer's failure", err)
	}
	// Emitting after Close must be a safe no-op.
	tr.Emit(obs.Record{Kind: "event", Name: "y", Time: time.Unix(2, 0)})
	if err := tr.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
}
