package telemetry

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"commsched/internal/obs"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(NewRegistry(), NewHub())
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	code, body, _ := get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("status = %d, want 200", code)
	}
	var payload struct {
		Status string  `json:"status"`
		Uptime float64 `json:"uptime_seconds"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("healthz is not JSON: %v\n%s", err, body)
	}
	if payload.Status != "ok" || payload.Uptime < 0 {
		t.Errorf("healthz = %+v, want status ok with non-negative uptime", payload)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	s.Registry.Emit(obs.Record{Kind: "event", Name: "simnet.sweep_point"})
	s.Registry.Emit(obs.Record{Kind: "span", Name: "simnet.run", Dur: time.Second})

	code, body, hdr := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d, want 200", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 text exposition", ct)
	}
	for _, want := range []string{
		`commsched_records_total{kind="event",name="simnet.sweep_point"} 1`,
		`commsched_span_duration_seconds_sum{name="simnet.run"} 1`,
		"commsched_sse_subscribers 0",
		"commsched_sse_records_total",
		"commsched_sse_dropped_total",
		"commsched_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestRunsEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	s.Registry.Emit(obs.Record{Kind: "event", Name: "run.manifest",
		Fields: []obs.Field{obs.F("command", "netsim")}})
	s.Registry.Emit(obs.Record{Kind: "event", Name: "progress",
		Fields: []obs.Field{obs.F("task", "simnet.sweep"), obs.F("done", int64(3)), obs.F("total", int64(9))}})

	code, body, hdr := get(t, ts.URL+"/runs")
	if code != http.StatusOK {
		t.Fatalf("status = %d, want 200", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var payload struct {
		Manifest map[string]any  `json:"manifest"`
		Progress []ProgressState `json:"progress"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("/runs is not JSON: %v\n%s", err, body)
	}
	if payload.Manifest["command"] != "netsim" {
		t.Errorf("manifest = %v, want command netsim", payload.Manifest)
	}
	if len(payload.Progress) != 1 || payload.Progress[0].Done != 3 {
		t.Errorf("progress = %+v, want simnet.sweep at 3/9", payload.Progress)
	}
}

// TestEventsStream exercises the full SSE path over a real connection:
// subscribe, receive a record mid-stream, disconnect.
func TestEventsStream(t *testing.T) {
	s, ts := newTestServer(t)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET /events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	// The handler subscribes before writing its greeting comment, so keep
	// emitting until the stream yields a record — no sleep calibration.
	done := make(chan struct{})
	defer close(done)
	go func() {
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				s.Hub.Emit(obs.Record{Kind: "event", Name: "live.ping",
					Fields: []obs.Field{obs.F("n", int64(1))}})
			}
		}
	}()

	scanner := bufio.NewScanner(resp.Body)
	sawEvent := false
	for scanner.Scan() {
		line := scanner.Text()
		if line == "event: record" {
			sawEvent = true
			continue
		}
		if sawEvent && strings.HasPrefix(line, "data: ") {
			var obj map[string]any
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &obj); err != nil {
				t.Fatalf("SSE data is not JSON: %v\n%s", err, line)
			}
			if obj["name"] != "live.ping" {
				t.Errorf("streamed record = %v, want live.ping", obj)
			}
			return // success: cancel() and the deferred close tear down
		}
	}
	t.Fatalf("stream ended without a record event: %v", scanner.Err())
}

// TestServerStartClose covers the real listener path used by -serve,
// including ":0" port selection.
func TestServerStartClose(t *testing.T) {
	s := NewServer(NewRegistry(), NewHub())
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if s.Addr() != addr || addr == "" {
		t.Fatalf("Addr() = %q, Start returned %q", s.Addr(), addr)
	}
	code, _, _ := get(t, fmt.Sprintf("http://%s/healthz", addr))
	if code != http.StatusOK {
		t.Fatalf("healthz over the bound listener = %d, want 200", code)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Error("listener still accepting connections after Close")
	}
}

// TestServiceLifecycle drives the Options-based wiring the commands use:
// with -serve and -trace set, records emitted through obs reach /metrics,
// and Close finalizes a loadable trace file.
func TestServiceLifecycle(t *testing.T) {
	dir := t.TempDir()
	tracePath := dir + "/trace.json"
	jsonlPath := dir + "/trace.jsonl"
	var banner strings.Builder
	svc, err := Start(Options{Serve: "127.0.0.1:0", Trace: tracePath, Metrics: jsonlPath, Banner: &banner})
	if err != nil {
		t.Fatal(err)
	}
	defer obs.SetSink(nil)
	if !obs.Enabled() {
		t.Fatal("obs not enabled after Start with sinks configured")
	}
	if !strings.Contains(banner.String(), svc.Addr) {
		t.Errorf("banner %q does not mention the bound address %s", banner.String(), svc.Addr)
	}

	obs.Event("smoke.event", obs.F("value", int64(42)))
	sp := obs.StartSpan("smoke.span")
	sp.End()

	_, body, _ := get(t, "http://"+svc.Addr+"/metrics")
	if !strings.Contains(body, `commsched_records_total{kind="event",name="smoke.event"} 1`) {
		t.Errorf("/metrics missing the live event:\n%s", body)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if obs.Enabled() {
		t.Error("obs still enabled after Close")
	}

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var p tracePayload
	if err := json.Unmarshal(data, &p); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(p.TraceEvents) == 0 {
		t.Error("trace file has no events")
	}
	lines, err := os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(lines), `"name":"smoke.event"`) {
		t.Errorf("JSONL trace missing the event:\n%s", lines)
	}
}

// TestTraceEndpoint checks GET /trace/{id}: 404 without a store or for
// unknown IDs, the JSON trace view otherwise.
func TestTraceEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	if code, _, _ := get(t, ts.URL+"/trace/deadbeef"); code != http.StatusNotFound {
		t.Fatalf("without a store, status = %d, want 404", code)
	}
	s.Traces = NewTraces(0, 0)
	tr, err := obs.ParseTraceID("0af7651916cd43dd8448eb211c80319c")
	if err != nil {
		t.Fatal(err)
	}
	s.Traces.Emit(obs.Record{Time: time.Unix(1, 0), Kind: "span", Name: "service.run", Trace: tr})
	code, body, hdr := get(t, ts.URL+"/trace/"+tr.String())
	if code != http.StatusOK {
		t.Fatalf("status = %d, want 200: %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var payload struct {
		Trace   string           `json:"trace"`
		Records []map[string]any `json:"records"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("trace view is not JSON: %v\n%s", err, body)
	}
	if payload.Trace != tr.String() || len(payload.Records) != 1 || payload.Records[0]["name"] != "service.run" {
		t.Errorf("trace view = %+v", payload)
	}
	if code, _, _ := get(t, ts.URL+"/trace/unknown"); code != http.StatusNotFound {
		t.Errorf("unknown trace status = %d, want 404", code)
	}
}

// TestMetricsContentNegotiation checks the Accept-header switch between
// Prometheus 0.0.4 and OpenMetrics (exemplars + # EOF).
func TestMetricsContentNegotiation(t *testing.T) {
	s, ts := newTestServer(t)
	tr, err := obs.ParseTraceID("0af7651916cd43dd8448eb211c80319c")
	if err != nil {
		t.Fatal(err)
	}
	s.Registry.Emit(obs.Record{Time: time.Unix(5, 0), Kind: "span", Name: "http.request",
		Dur: 3 * time.Millisecond, Trace: tr,
		Fields: []obs.Field{obs.F("endpoint", "/jobs")}})

	req, err := http.NewRequest("GET", ts.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/openmetrics-text") {
		t.Errorf("openmetrics content type = %q", ct)
	}
	if !strings.HasSuffix(string(body), "# EOF\n") {
		t.Error("openmetrics body missing # EOF terminator")
	}
	if !strings.Contains(string(body), `# {trace_id="`+tr.String()+`"}`) {
		t.Error("openmetrics body missing the trace exemplar")
	}

	_, plain, hdr := get(t, ts.URL+"/metrics")
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("default content type = %q", ct)
	}
	if strings.Contains(plain, "trace_id") || strings.Contains(plain, "# EOF") {
		t.Error("default exposition must stay plain Prometheus 0.0.4")
	}
}
