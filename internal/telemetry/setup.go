package telemetry

import (
	"fmt"
	"io"

	"commsched/internal/obs"
)

// Options are the telemetry-related flags shared by the commands.
type Options struct {
	// Serve starts the live HTTP endpoint on this address (":0" picks a
	// free port); empty disables it.
	Serve string
	// Trace records a Chrome trace-event JSON file at this path.
	Trace string
	// Metrics writes the JSONL observability trace to this path.
	Metrics string
	// CPUProfile / MemProfile write pprof profiles.
	CPUProfile, MemProfile string
	// Banner, when non-nil, receives the "serving on ..." line so users
	// of -serve :0 learn the bound port (commands pass os.Stderr).
	Banner io.Writer
}

// Service is the running telemetry of one command invocation.
type Service struct {
	// Addr is the bound HTTP address ("" when -serve was off).
	Addr string
	// Registry, Hub, and Traces are non-nil when the server is running.
	Registry *Registry
	Hub      *Hub
	Traces   *Traces

	server  *Server
	trace   *Trace
	jsonl   *obs.JSONL
	stopCPU func() error
	memPath string
}

// Start wires every requested output into one obs fan-out sink and
// installs it process-wide. With all options empty it installs nothing
// and the instrumented code keeps its one-atomic-load disabled path. The
// returned service must be Closed; Close reports the first flush, write,
// or profile error instead of dropping records silently on exit.
func Start(opts Options) (*Service, error) {
	svc := &Service{memPath: opts.MemProfile}
	var sinks obs.Fanout
	fail := func(err error) (*Service, error) {
		svc.Close() //nolint:errcheck // reporting the original error
		return nil, err
	}
	if opts.Metrics != "" {
		j, err := obs.OpenJSONL(opts.Metrics)
		if err != nil {
			return fail(err)
		}
		svc.jsonl = j
		sinks = append(sinks, j)
	}
	if opts.Trace != "" {
		tr, err := OpenTrace(opts.Trace)
		if err != nil {
			return fail(err)
		}
		svc.trace = tr
		sinks = append(sinks, tr)
	}
	if opts.Serve != "" {
		svc.Registry = NewRegistry()
		svc.Hub = NewHub()
		svc.Traces = NewTraces(0, 0)
		svc.server = NewServer(svc.Registry, svc.Hub)
		svc.server.Traces = svc.Traces
		addr, err := svc.server.Start(opts.Serve)
		if err != nil {
			return fail(err)
		}
		svc.Addr = addr
		if opts.Banner != nil {
			fmt.Fprintf(opts.Banner, "telemetry: serving on http://%s (/metrics /events /runs /trace/{id} /healthz /debug/pprof)\n", addr)
		}
		sinks = append(sinks, svc.Registry, svc.Hub, svc.Traces)
	}
	if opts.CPUProfile != "" {
		stop, err := obs.StartCPUProfile(opts.CPUProfile)
		if err != nil {
			return fail(err)
		}
		svc.stopCPU = stop
	}
	switch len(sinks) {
	case 0:
		// Nothing installed: emission helpers stay on the disabled path.
	case 1:
		obs.SetSink(sinks[0])
	default:
		obs.SetSink(sinks)
	}
	return svc, nil
}

// Close uninstalls the sink, stops the server, finalizes the trace and
// JSONL files, and writes the requested profiles. The first error wins.
func (s *Service) Close() error {
	obs.SetSink(nil)
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if s.stopCPU != nil {
		keep(s.stopCPU())
	}
	if s.memPath != "" {
		keep(obs.WriteHeapProfile(s.memPath))
	}
	if s.server != nil {
		keep(s.server.Close())
	}
	if s.trace != nil {
		keep(s.trace.Close())
	}
	if s.jsonl != nil {
		keep(s.jsonl.Close())
	}
	return first
}
