package telemetry

import (
	"encoding/json"
	"testing"
	"time"

	"commsched/internal/obs"
)

func TestHubDeliversRecords(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe(4)
	defer sub.Close()

	h.Emit(obs.Record{Kind: "event", Name: "simnet.sweep_point",
		Fields: []obs.Field{obs.F("rate", 0.25)}})

	select {
	case data := <-sub.C():
		var obj map[string]any
		if err := json.Unmarshal(data, &obj); err != nil {
			t.Fatalf("delivered record is not JSON: %v\n%s", err, data)
		}
		if obj["name"] != "simnet.sweep_point" || obj["rate"] != 0.25 {
			t.Errorf("record = %v, want name=simnet.sweep_point rate=0.25", obj)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no record delivered")
	}
}

// TestHubSlowClientDrops pins the bounded-buffer contract: a subscriber
// that stops draining loses records (counted per-sub and hub-wide) but
// never blocks Emit.
func TestHubSlowClientDrops(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe(1)
	defer sub.Close()

	for i := 0; i < 5; i++ {
		h.Emit(obs.Record{Kind: "event", Name: "e"})
	}
	if got := sub.Dropped(); got != 4 {
		t.Errorf("sub.Dropped() = %d, want 4 (buffer of 1, 5 emits)", got)
	}
	subs, emitted, dropped := h.Stats()
	if subs != 1 || emitted != 5 || dropped != 4 {
		t.Errorf("Stats() = (%d, %d, %d), want (1, 5, 4)", subs, emitted, dropped)
	}
	// The buffered record is still readable.
	select {
	case <-sub.C():
	default:
		t.Error("buffered record lost")
	}
}

func TestHubUnsubscribe(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe(1)
	sub.Close()
	sub.Close() // idempotent
	h.Emit(obs.Record{Kind: "event", Name: "e"})
	subs, emitted, dropped := h.Stats()
	if subs != 0 {
		t.Errorf("subscribers = %d after Close, want 0", subs)
	}
	if emitted != 1 || dropped != 0 {
		t.Errorf("emitted/dropped = %d/%d, want 1/0 (no one listening, nothing dropped)", emitted, dropped)
	}
	select {
	case <-sub.C():
		t.Error("record delivered to a closed subscription")
	default:
	}
}
