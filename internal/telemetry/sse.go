package telemetry

import (
	"encoding/json"
	"sync"
	"sync/atomic"

	"commsched/internal/obs"
)

// Hub fans the record stream out to live SSE subscribers. It is an
// obs.Sink: each record is JSON-encoded once (the same flattened object
// the JSONL sink writes) and offered to every subscriber's bounded
// buffer. A subscriber that cannot keep up never blocks the emitting hot
// path — the record is dropped for that subscriber and counted, and the
// drop total is reported both per subscription and hub-wide.
type Hub struct {
	mu      sync.Mutex
	subs    map[*Subscription]struct{}
	dropped atomic.Int64
	emitted atomic.Int64
}

// Subscription is one client's bounded view of the stream.
type Subscription struct {
	hub     *Hub
	ch      chan []byte
	dropped atomic.Int64
	once    sync.Once
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{subs: make(map[*Subscription]struct{})}
}

// Emit implements obs.Sink.
func (h *Hub) Emit(r obs.Record) {
	h.emitted.Add(1)
	h.mu.Lock()
	if len(h.subs) == 0 {
		h.mu.Unlock()
		return
	}
	// Encode under the lock only when someone is listening; records are
	// small and subscriber counts are tiny (humans and scrapers).
	data, err := json.Marshal(obs.RecordObject(r))
	if err != nil {
		h.mu.Unlock()
		return
	}
	for s := range h.subs {
		select {
		case s.ch <- data:
		default:
			s.dropped.Add(1)
			h.dropped.Add(1)
		}
	}
	h.mu.Unlock()
}

// Subscribe registers a new client with the given buffer capacity
// (minimum 1). The caller must Close the subscription when done.
func (h *Hub) Subscribe(buffer int) *Subscription {
	if buffer < 1 {
		buffer = 1
	}
	s := &Subscription{hub: h, ch: make(chan []byte, buffer)}
	h.mu.Lock()
	h.subs[s] = struct{}{}
	h.mu.Unlock()
	return s
}

// C is the subscription's record channel; each element is one
// JSON-encoded record. The channel is never closed by the hub — readers
// select against their own cancellation signal.
func (s *Subscription) C() <-chan []byte { return s.ch }

// Dropped reports how many records this subscription missed because its
// buffer was full.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Close unregisters the subscription; safe to call more than once.
func (s *Subscription) Close() {
	s.once.Do(func() {
		s.hub.mu.Lock()
		delete(s.hub.subs, s)
		s.hub.mu.Unlock()
	})
}

// Stats reports the current subscriber count, records offered to the hub,
// and records dropped across all (past and present) subscribers.
func (h *Hub) Stats() (subscribers int, emitted, dropped int64) {
	h.mu.Lock()
	subscribers = len(h.subs)
	h.mu.Unlock()
	return subscribers, h.emitted.Load(), h.dropped.Load()
}
