package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"commsched/internal/obs"
)

// Trace records the obs stream as Chrome trace-event JSON ("trace event
// format"), loadable in Perfetto or chrome://tracing. It is an obs.Sink.
//
// Spans become matched B/E duration pairs. A span carrying a "worker"
// field (the par.ForEach item spans) lands on that worker's thread lane,
// so the fan-out of a parallel sweep reads as a swimlane diagram; all
// other spans are packed onto synthetic lanes such that every lane's
// spans nest properly — a requirement of the B/E stack semantics that
// concurrent goroutines sharing one lane would violate. Periodic
// "simnet.sample" events become counter tracks (source-queue flits and
// active worms per injection rate), "hist" flushes become one summary
// counter sample, and any other event becomes an instant event.
//
// Records are buffered in memory and written, sorted by timestamp, on
// Close — runs are finite and the volume is a few records per simulation
// plus coarse periodic samples.
type Trace struct {
	mu     sync.Mutex
	w      io.Writer
	c      io.Closer
	spans  []traceSpan
	points []traceEvent // instant + counter events with absolute ts in Ts
	times  []time.Time  // absolute time of each points[i]
	closed bool
}

// traceSpan is a completed span waiting for lane assignment.
type traceSpan struct {
	name       string
	start, end time.Time
	worker     int // -1 when the record carried no worker field
	args       map[string]any
}

// traceEvent is one JSON object of the traceEvents array.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// tracePid is the single process ID used for all events.
const tracePid = 1

// maxTime is far enough in the future to close any open span.
var maxTime = time.Unix(1<<62-1, 0)

// autoLaneBase is the first tid of the synthetic (non-worker) lanes;
// worker lanes are 1+worker, so the bases must not collide for any
// plausible worker count.
const autoLaneBase = 1000

// NewTrace wraps a writer; Close must be called to write the file.
func NewTrace(w io.Writer) *Trace {
	t := &Trace{w: w}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// OpenTrace creates (truncates) a trace file at path.
func OpenTrace(path string) (*Trace, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: opening trace %s: %w", path, err)
	}
	return NewTrace(f), nil
}

// Emit implements obs.Sink.
func (t *Trace) Emit(r obs.Record) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	switch r.Kind {
	case "span":
		s := traceSpan{name: r.Name, start: r.Time, end: r.Time.Add(r.Dur), worker: -1}
		s.args = make(map[string]any, len(r.Fields))
		for _, f := range r.Fields {
			if f.Key == "worker" {
				if w, ok := toFloat(f.Value); ok && w >= 0 {
					s.worker = int(w)
				}
			}
			s.args[f.Key] = f.Value
		}
		t.spans = append(t.spans, s)
	case "hist":
		mean, _ := fieldFloat(r, "mean")
		count, _ := fieldFloat(r, "count")
		t.addPoint(r.Time, traceEvent{
			Name: r.Name, Ph: "C", Pid: tracePid,
			Args: map[string]any{"mean": mean, "count": count},
		})
	default:
		if r.Name == "simnet.sample" {
			t.addSimSample(r)
			return
		}
		args := make(map[string]any, len(r.Fields))
		for _, f := range r.Fields {
			args[f.Key] = f.Value
		}
		t.addPoint(r.Time, traceEvent{Name: r.Name, Ph: "i", Pid: tracePid, S: "p", Args: args})
	}
}

// addSimSample turns one periodic simulator sample into two counter-track
// samples. Parallel sweep points run concurrently, so the injection rate
// is folded into the counter name to keep each operating point on its own
// track.
func (t *Trace) addSimSample(r obs.Record) {
	suffix := ""
	if rate, ok := fieldFloat(r, "rate"); ok {
		suffix = fmt.Sprintf(" rate=%.4g", rate)
	}
	if q, ok := fieldFloat(r, "queue_flits"); ok {
		t.addPoint(r.Time, traceEvent{
			Name: "simnet.queue_flits" + suffix, Ph: "C", Pid: tracePid,
			Args: map[string]any{"flits": q},
		})
	}
	if worms, ok := fieldFloat(r, "active_worms"); ok {
		t.addPoint(r.Time, traceEvent{
			Name: "simnet.active_worms" + suffix, Ph: "C", Pid: tracePid,
			Args: map[string]any{"worms": worms},
		})
	}
}

func (t *Trace) addPoint(at time.Time, ev traceEvent) {
	t.points = append(t.points, ev)
	t.times = append(t.times, at)
}

// Close lays the buffered records out as trace events and writes the
// file; it reports the first encoding, write, or close error.
func (t *Trace) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	events := t.layout()
	bw := bufio.NewWriter(t.w)
	var firstErr error
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		firstErr = err
	}
	for i, ev := range events {
		line, err := json.Marshal(ev)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("telemetry: encoding trace event %q: %w", ev.Name, err)
			}
			continue
		}
		if i > 0 {
			bw.WriteString(",\n")
		}
		if _, err := bw.Write(line); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := bw.Flush(); err != nil && firstErr == nil {
		firstErr = err
	}
	if t.c != nil {
		if err := t.c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// lane is one thread track during layout: a stack of currently open
// spans plus the B/E events generated for it so far.
type lane struct {
	tid    int
	label  string
	open   []openSpan // outermost first
	events []traceEvent
	times  []time.Time
}

type openSpan struct {
	name string
	end  time.Time
}

// close emits E events, innermost first, for every open span that ends
// at or before upTo.
func (l *lane) close(upTo time.Time) {
	for len(l.open) > 0 && !l.open[len(l.open)-1].end.After(upTo) {
		top := l.open[len(l.open)-1]
		l.open = l.open[:len(l.open)-1]
		l.events = append(l.events, traceEvent{Name: top.name, Ph: "E", Pid: tracePid, Tid: l.tid})
		l.times = append(l.times, top.end)
	}
}

// fits closes everything that ended before s starts and reports whether s
// nests properly under the lane's innermost still-open span. The closes
// are kept even when s is then placed elsewhere — they are due on this
// lane regardless.
func (l *lane) fits(s traceSpan) bool {
	l.close(s.start)
	return len(l.open) == 0 || !l.open[len(l.open)-1].end.Before(s.end)
}

// openSpan emits s's B event and pushes it on the open stack; the caller
// must have checked fits first.
func (l *lane) openSpanEv(s traceSpan) {
	l.events = append(l.events, traceEvent{Name: s.name, Ph: "B", Pid: tracePid, Tid: l.tid, Args: s.args})
	l.times = append(l.times, s.start)
	l.open = append(l.open, openSpan{name: s.name, end: s.end})
}

// layout assigns spans to lanes, generates ordered B/E pairs per lane,
// merges the point events, and returns everything sorted by timestamp
// (with metadata events first).
func (t *Trace) layout() []traceEvent {
	spans := append([]traceSpan(nil), t.spans...)
	sort.SliceStable(spans, func(i, j int) bool {
		if !spans[i].start.Equal(spans[j].start) {
			return spans[i].start.Before(spans[j].start)
		}
		return spans[i].end.After(spans[j].end) // longer first: outer before inner
	})

	workerLanes := map[int]*lane{}
	var autoLanes []*lane
	var laneOrder []*lane
	for _, s := range spans {
		if s.worker >= 0 {
			l := workerLanes[s.worker]
			if l == nil {
				l = &lane{tid: 1 + s.worker, label: fmt.Sprintf("par worker %d", s.worker)}
				workerLanes[s.worker] = l
				laneOrder = append(laneOrder, l)
			}
			if l.fits(s) {
				l.openSpanEv(s)
				continue
			}
		}
		placed := false
		for _, l := range autoLanes {
			if l.fits(s) {
				l.openSpanEv(s)
				placed = true
				break
			}
		}
		if !placed {
			l := &lane{tid: autoLaneBase + len(autoLanes), label: fmt.Sprintf("lane %d", len(autoLanes))}
			autoLanes = append(autoLanes, l)
			laneOrder = append(laneOrder, l)
			l.openSpanEv(s)
		}
	}

	var all []traceEvent
	var times []time.Time
	base := time.Time{}
	for _, l := range laneOrder {
		l.close(maxTime) // flush the spans still open at the end
		all = append(all, l.events...)
		times = append(times, l.times...)
	}
	all = append(all, t.points...)
	times = append(times, t.times...)
	for _, at := range times {
		if base.IsZero() || at.Before(base) {
			base = at
		}
	}
	for i := range all {
		all[i].Ts = float64(times[i].Sub(base).Nanoseconds()) / 1e3
	}
	// Stable sort keeps each lane's generation order at equal timestamps,
	// which is what makes B/E pairs stack-consistent.
	sort.SliceStable(all, func(i, j int) bool { return all[i].Ts < all[j].Ts })

	// Thread-name metadata first (ts 0 ≤ every event by construction).
	var out []traceEvent
	for _, l := range laneOrder {
		out = append(out, traceEvent{
			Name: "thread_name", Ph: "M", Pid: tracePid, Tid: l.tid,
			Args: map[string]any{"name": l.label},
		})
	}
	return append(out, all...)
}
