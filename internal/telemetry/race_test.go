package telemetry

import (
	"io"
	"sync"
	"testing"

	"commsched/internal/obs"
)

// TestRegistryConcurrentHistFlush hammers the registry with concurrent
// histogram flushes, span/progress records, and exposition renders. Run
// under -race (the CI race job includes this package) it proves ingestion
// and scraping can overlap — the property /metrics depends on mid-run.
func TestRegistryConcurrentHistFlush(t *testing.T) {
	g := NewRegistry()
	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Histograms are single-owner by contract; each goroutine flushes
			// its own into the shared registry.
			h := obs.NewHistogram("simnet.queue_occupancy", obs.PowersOfTwoBounds(4))
			for i := 0; i < iters; i++ {
				h.Observe(float64(i % 7))
				g.Emit(h.Record())
				g.Emit(obs.Record{Kind: "span", Name: "simnet.run"})
				g.Emit(obs.Record{Kind: "event", Name: "progress",
					Fields: []obs.Field{obs.F("task", "sweep"), obs.F("done", int64(i)), obs.F("total", int64(iters))}})
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if err := g.WritePrometheus(io.Discard); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
			if _, err := g.RunsJSON(); err != nil {
				t.Errorf("RunsJSON: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

// TestHubConcurrentSubscribe overlaps emitters with subscribers that
// join, drain, and leave continuously — the /events connect/disconnect
// pattern under load.
func TestHubConcurrentSubscribe(t *testing.T) {
	h := NewHub()
	const emitters, subscribers, iters = 4, 4, 300
	var wg sync.WaitGroup
	for e := 0; e < emitters; e++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				h.Emit(obs.Record{Kind: "event", Name: "e",
					Fields: []obs.Field{obs.F("i", int64(i))}})
			}
		}()
	}
	for s := 0; s < subscribers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters/10; i++ {
				sub := h.Subscribe(2)
				// Drain whatever is immediately available, then leave.
				for drained := true; drained; {
					select {
					case <-sub.C():
					default:
						drained = false
					}
				}
				sub.Dropped()
				sub.Close()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			h.Stats()
		}
	}()
	wg.Wait()

	if subs, emitted, _ := h.Stats(); subs != 0 || emitted != emitters*iters {
		t.Errorf("final Stats = (%d, %d, _), want (0, %d)", subs, emitted, emitters*iters)
	}
}
