package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"commsched/internal/obs"
)

func mustTrace(t *testing.T, s string) obs.TraceID {
	t.Helper()
	id, err := obs.ParseTraceID(s)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// feedLatency ingests a deterministic mix of http.request spans and
// service.latency events, some traced (exemplar-bearing) and some not.
func feedLatency(t *testing.T, g *Registry) {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	tr1 := mustTrace(t, "0af7651916cd43dd8448eb211c80319c")
	tr2 := mustTrace(t, "1bf7651916cd43dd8448eb211c80319d")
	g.Emit(obs.Record{Time: base, Kind: "span", Name: "http.request",
		Dur: 3 * time.Millisecond, Trace: tr1,
		Fields: []obs.Field{obs.F("endpoint", "/jobs"), obs.F("status", 202)}})
	g.Emit(obs.Record{Time: base.Add(time.Second), Kind: "span", Name: "http.request",
		Dur: 40 * time.Millisecond, Trace: tr2,
		Fields: []obs.Field{obs.F("endpoint", "/jobs"), obs.F("status", 202)}})
	g.Emit(obs.Record{Time: base, Kind: "span", Name: "http.request",
		Dur: 700 * time.Microsecond, // untraced: bucket keeps no exemplar
		Fields: []obs.Field{obs.F("endpoint", "/jobs/{id}"), obs.F("status", 200)}})
	g.Emit(obs.Record{Time: base, Kind: "event", Name: "service.latency", Trace: tr1,
		Fields: []obs.Field{obs.F("state", "queued"), obs.F("seconds", 0.02)}})
	g.Emit(obs.Record{Time: base, Kind: "event", Name: "service.latency", Trace: tr1,
		Fields: []obs.Field{obs.F("state", "running"), obs.F("seconds", 1.8)}})
}

// TestWriteOpenMetricsGolden pins the OpenMetrics rendering: latency
// histograms with trace-ID exemplars on the buckets that saw traced
// observations, and the "# EOF" terminator.
func TestWriteOpenMetricsGolden(t *testing.T) {
	g := NewRegistry()
	g.now = fixedClock(time.Date(2026, 1, 2, 3, 0, 0, 0, time.UTC), 10*time.Second)
	g.started = g.now()
	feedLatency(t, g)

	var buf bytes.Buffer
	if err := g.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "openmetrics.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (rerun with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("OpenMetrics exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
	if !bytes.HasSuffix(buf.Bytes(), []byte("# EOF\n")) {
		t.Error("OpenMetrics exposition must end with # EOF")
	}
	if !bytes.Contains(buf.Bytes(), []byte(`# {trace_id="0af7651916cd43dd8448eb211c80319c"}`)) {
		t.Error("exposition lost the trace exemplar")
	}
}

// TestPrometheusHasNoExemplars checks the 0.0.4 exposition renders the
// same histograms bare — exemplar syntax is OpenMetrics-only.
func TestPrometheusHasNoExemplars(t *testing.T) {
	g := NewRegistry()
	feedLatency(t, g)
	var buf bytes.Buffer
	if err := g.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `commsched_http_request_duration_seconds_bucket{endpoint="/jobs",le="0.05"} 2`) {
		t.Errorf("latency histogram missing from Prometheus exposition:\n%s", out)
	}
	if strings.Contains(out, "trace_id") || strings.Contains(out, "# EOF") {
		t.Error("Prometheus 0.0.4 exposition must not carry exemplars or EOF")
	}
}

// TestTracesStore exercises the bounded /trace store: retention, record
// capping, eviction, and the JSON view.
func TestTracesStore(t *testing.T) {
	ts := NewTraces(2, 3)
	tr := func(i int) obs.TraceID {
		id, err := obs.ParseTraceID(fmt.Sprintf("%032x", i+1))
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	for i := 0; i < 5; i++ { // 5 records for trace 0: 2 past the cap
		ts.Emit(obs.Record{Time: time.Unix(int64(i), 0), Kind: "span", Name: "s", Trace: tr(0)})
	}
	ts.Emit(obs.Record{Kind: "event", Name: "untraced"}) // ignored
	data, ok := ts.TraceJSON(tr(0).String())
	if !ok {
		t.Fatal("trace 0 missing")
	}
	var payload struct {
		Trace   string           `json:"trace"`
		Records []map[string]any `json:"records"`
		Dropped int              `json:"dropped"`
	}
	if err := json.Unmarshal(data, &payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Records) != 3 || payload.Dropped != 2 {
		t.Fatalf("records/dropped = %d/%d, want 3/2", len(payload.Records), payload.Dropped)
	}

	ts.Emit(obs.Record{Kind: "span", Name: "s", Trace: tr(1)})
	ts.Emit(obs.Record{Kind: "span", Name: "s", Trace: tr(2)}) // evicts trace 0
	if _, ok := ts.TraceJSON(tr(0).String()); ok {
		t.Error("oldest trace survived past the cap")
	}
	if _, ok := ts.TraceJSON(tr(2).String()); !ok {
		t.Error("newest trace missing")
	}
	ids := ts.IDs()
	if len(ids) != 2 || ids[0] != tr(2).String() {
		t.Errorf("IDs() = %v, want newest first", ids)
	}
}
