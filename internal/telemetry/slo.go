package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"commsched/internal/obs"
)

// The RED/SLO layer: the registry turns two instrumentation points into
// labeled latency histograms whose buckets remember the last trace that
// landed in them, so a tail-latency bucket on a dashboard links straight
// to a concrete trace (OpenMetrics exemplars):
//
//   - "http.request" spans with an "endpoint" field feed
//     commsched_http_request_duration_seconds{endpoint=...}
//   - "service.latency" events with "state" and "seconds" fields feed
//     commsched_job_state_duration_seconds{state=...} (queued, running)
//
// Exemplars only appear in the OpenMetrics exposition (negotiated via the
// Accept header on /metrics); the Prometheus text 0.0.4 format predates
// them and renders the same histograms bare.

// latencyBounds are the shared SLO bucket bounds, in seconds. They span
// sub-millisecond admission work up to multi-second sweep jobs.
var latencyBounds = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// exemplar is the last observation that landed in one bucket, with the
// trace that produced it.
type exemplar struct {
	trace string
	value float64
	ts    time.Time
}

// latencySeries is one labeled histogram with per-bucket exemplars.
type latencySeries struct {
	counts    []int64 // len(latencyBounds)+1, last is +Inf
	exemplars []exemplar
	count     int64
	sum       float64
}

func newLatencySeries() *latencySeries {
	return &latencySeries{
		counts:    make([]int64, len(latencyBounds)+1),
		exemplars: make([]exemplar, len(latencyBounds)+1),
	}
}

// observeLatency files one observation (seconds) into the series for key,
// remembering the record's trace as the bucket's exemplar. Callers hold
// g.mu.
func (g *Registry) observeLatency(m map[string]*latencySeries, key string, v float64, r obs.Record) {
	s := m[key]
	if s == nil {
		s = newLatencySeries()
		m[key] = s
	}
	i := sort.SearchFloat64s(latencyBounds, v) // first bound >= v, i.e. the "le" bucket
	s.counts[i]++
	s.count++
	s.sum += v
	if !r.Trace.IsZero() {
		ts := r.Time
		if ts.IsZero() {
			ts = g.now()
		}
		s.exemplars[i] = exemplar{trace: r.Trace.String(), value: v, ts: ts}
	}
}

// writeLatencyFamily renders one labeled latency histogram; with exemplars
// on, bucket lines carry the OpenMetrics "# {trace_id=...} value ts"
// suffix when the bucket has seen a traced observation.
func writeLatencyFamily(b *strings.Builder, name, help, label string, m map[string]*latencySeries, exemplars bool) {
	if len(m) == 0 {
		return
	}
	fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	fmt.Fprintf(b, "# TYPE %s histogram\n", name)
	forSortedKeys(m, func(k string, s *latencySeries) {
		cum := int64(0)
		for i, c := range s.counts {
			cum += c
			le := "+Inf"
			if i < len(latencyBounds) {
				le = formatFloat(latencyBounds[i])
			}
			fmt.Fprintf(b, "%s_bucket{%s=%q,le=%q} %d", name, label, k, le, cum)
			if exemplars && s.exemplars[i].trace != "" {
				e := s.exemplars[i]
				fmt.Fprintf(b, " # {trace_id=%q} %s %.3f", e.trace, formatFloat(e.value),
					float64(e.ts.UnixMilli())/1000)
			}
			b.WriteByte('\n')
		}
		fmt.Fprintf(b, "%s_sum{%s=%q} %s\n", name, label, k, formatFloat(s.sum))
		fmt.Fprintf(b, "%s_count{%s=%q} %d\n", name, label, k, s.count)
	})
}

// WriteOpenMetrics renders the registry in the OpenMetrics text format:
// the same families as WritePrometheus, but latency histogram buckets
// carry trace-ID exemplars, and the exposition ends with the mandatory
// "# EOF" terminator. Output is deterministic for identical contents,
// like the Prometheus exposition.
func (g *Registry) WriteOpenMetrics(w io.Writer) error {
	if err := g.writeExposition(w, true); err != nil {
		return err
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}
