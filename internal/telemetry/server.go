package telemetry

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// Server is the embeddable telemetry endpoint of a long-running command:
//
//	/metrics   Prometheus text exposition of the registry (+ SSE stats);
//	           clients accepting application/openmetrics-text get the
//	           OpenMetrics rendering with trace-ID exemplars
//	/events    Server-Sent-Events stream of live obs records
//	/runs      run manifest + live progress/ETA, as JSON
//	/trace/{id}  one retained trace as JSON (404 without a trace store)
//	/healthz   liveness probe
//	/debug/pprof/...  the standard pprof handlers
//
// Start binds a listener (addr ":0" picks a free port) and serves in a
// background goroutine; Close shuts the listener down.
type Server struct {
	// Registry aggregates the record stream for /metrics and /runs.
	Registry *Registry
	// Hub fans records out to /events subscribers.
	Hub *Hub
	// Traces, when non-nil, backs GET /trace/{id}. Set it before Start
	// (it is read per-request, so assigning after NewServer is enough).
	Traces *Traces

	srv     *http.Server
	ln      net.Listener
	started time.Time
}

// NewServer wires a server around an existing registry and hub.
func NewServer(reg *Registry, hub *Hub) *Server {
	s := &Server{Registry: reg, Hub: hub, started: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/runs", s.handleRuns)
	mux.HandleFunc("/trace/", s.handleTrace)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	return s
}

// Start listens on addr and serves until Close. It returns the bound
// address (useful with ":0").
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: listening on %s: %w", addr, err)
	}
	s.ln = ln
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return ln.Addr().String(), nil
}

// Addr returns the bound address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Handler exposes the mux (for tests and embedding into a larger server).
func (s *Server) Handler() http.Handler { return s.srv.Handler }

// Close stops the listener. In-flight SSE streams end when their clients
// observe the closed connection.
func (s *Server) Close() error {
	if s.ln == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	openmetrics := strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text")
	if openmetrics {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	} else {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	}
	if err := s.Registry.writeExposition(w, openmetrics); err != nil {
		return
	}
	subs, emitted, dropped := s.Hub.Stats()
	fmt.Fprintf(w, "# HELP commsched_sse_subscribers Currently connected /events clients.\n")
	fmt.Fprintf(w, "# TYPE commsched_sse_subscribers gauge\n")
	fmt.Fprintf(w, "commsched_sse_subscribers %d\n", subs)
	fmt.Fprintf(w, "# HELP commsched_sse_records_total Records offered to the SSE hub.\n")
	fmt.Fprintf(w, "# TYPE commsched_sse_records_total counter\n")
	fmt.Fprintf(w, "commsched_sse_records_total %d\n", emitted)
	fmt.Fprintf(w, "# HELP commsched_sse_dropped_total Records dropped across slow /events clients.\n")
	fmt.Fprintf(w, "# TYPE commsched_sse_dropped_total counter\n")
	fmt.Fprintf(w, "commsched_sse_dropped_total %d\n", dropped)
	if openmetrics {
		io.WriteString(w, "# EOF\n")
	}
}

// handleTrace serves GET /trace/{id}: the retained records of one trace
// as JSON, or 404 when the ID is unknown (or no trace store is wired).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/trace/")
	if s.Traces == nil || id == "" {
		http.Error(w, `{"error":"trace store disabled or missing id"}`, http.StatusNotFound)
		return
	}
	data, ok := s.Traces.TraceJSON(id)
	if !ok {
		http.Error(w, `{"error":"unknown trace"}`, http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// sseBuffer is the per-client record buffer; past it, records are dropped
// for that client rather than ever blocking the emitting hot path.
const sseBuffer = 1024

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	sub := s.Hub.Subscribe(sseBuffer)
	defer sub.Close()
	fmt.Fprintf(w, ": commsched live record stream\n\n")
	flusher.Flush()
	var reported int64
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case data := <-sub.C():
			fmt.Fprintf(w, "event: record\ndata: %s\n\n", data)
			// Surface slow-client drops in-band, so a consumer knows its
			// view has gaps.
			if d := sub.Dropped(); d > reported {
				reported = d
				fmt.Fprintf(w, "event: dropped\ndata: {\"dropped_total\":%d}\n\n", d)
			}
			flusher.Flush()
		case <-heartbeat.C:
			fmt.Fprintf(w, ": heartbeat\n\n")
			flusher.Flush()
		}
	}
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	data, err := s.Registry.RunsJSON()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"uptime_seconds\":%.3f}\n", time.Since(s.started).Seconds())
}
