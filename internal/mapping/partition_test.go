package mapping

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidates(t *testing.T) {
	if _, err := New([]int{0, 1, 2}, 3); err != nil {
		t.Fatalf("valid partition rejected: %v", err)
	}
	if _, err := New([]int{0, 3}, 3); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if _, err := New([]int{-1, 0}, 2); err == nil {
		t.Fatal("negative label accepted")
	}
	if _, err := New([]int{0, 0}, 2); err == nil {
		t.Fatal("empty cluster accepted")
	}
	if _, err := New(nil, 2); err == nil {
		t.Fatal("empty assignment accepted")
	}
	if _, err := New([]int{0}, 0); err == nil {
		t.Fatal("zero clusters accepted")
	}
}

func TestNewCopiesInput(t *testing.T) {
	in := []int{0, 1}
	p, err := New(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	in[0] = 1
	if p.Cluster(0) != 0 {
		t.Fatal("New aliased the caller's slice")
	}
}

func TestBalanced(t *testing.T) {
	p, err := Balanced(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 16 || p.M() != 4 {
		t.Fatalf("N=%d M=%d", p.N(), p.M())
	}
	for c := 0; c < 4; c++ {
		if p.Size(c) != 4 {
			t.Fatalf("cluster %d size = %d, want 4", c, p.Size(c))
		}
	}
	if p.Cluster(0) != 0 || p.Cluster(15) != 3 {
		t.Fatal("contiguous layout wrong")
	}
	if _, err := Balanced(10, 4); err == nil {
		t.Fatal("indivisible balanced partition accepted")
	}
}

func TestRandomBalancedSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p, err := Random(16, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 4; c++ {
		if p.Size(c) != 4 {
			t.Fatalf("cluster %d size = %d, want 4", c, p.Size(c))
		}
	}
	if _, err := Random(15, 4, rng); err == nil {
		t.Fatal("indivisible random partition accepted")
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a, _ := Random(16, 4, rand.New(rand.NewSource(5)))
	b, _ := Random(16, 4, rand.New(rand.NewSource(5)))
	if !a.Equal(b) {
		t.Fatal("same seed gave different partitions")
	}
	c, _ := Random(16, 4, rand.New(rand.NewSource(6)))
	if a.Equal(c) {
		t.Fatal("different seeds gave identical partitions (suspicious)")
	}
}

func TestRandomSizes(t *testing.T) {
	p, err := RandomSizes([]int{2, 3, 5}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 10 || p.M() != 3 {
		t.Fatalf("N=%d M=%d", p.N(), p.M())
	}
	if p.Size(0) != 2 || p.Size(1) != 3 || p.Size(2) != 5 {
		t.Fatal("cluster sizes not honored")
	}
	if _, err := RandomSizes([]int{2, 0}, rand.New(rand.NewSource(3))); err == nil {
		t.Fatal("zero-size cluster accepted")
	}
	if _, err := RandomSizes(nil, rand.New(rand.NewSource(3))); err == nil {
		t.Fatal("empty size list accepted")
	}
}

func TestMembersSortedCopy(t *testing.T) {
	p, _ := New([]int{1, 0, 1, 0}, 2)
	ms := p.Members(1)
	if len(ms) != 2 || ms[0] != 0 || ms[1] != 2 {
		t.Fatalf("Members(1) = %v, want [0 2]", ms)
	}
	ms[0] = 99
	if p.Members(1)[0] == 99 {
		t.Fatal("Members exposed internal storage")
	}
}

func TestSwap(t *testing.T) {
	p, _ := New([]int{0, 0, 1, 1}, 2)
	p.Swap(0, 2)
	if p.Cluster(0) != 1 || p.Cluster(2) != 0 {
		t.Fatal("Swap did not exchange clusters")
	}
	if p.Size(0) != 2 || p.Size(1) != 2 {
		t.Fatal("Swap changed cluster sizes")
	}
	// Member lists stay consistent.
	found := false
	for _, s := range p.MembersUnordered(0) {
		if s == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("members list not updated by Swap")
	}
}

func TestSwapSameClusterNoop(t *testing.T) {
	p, _ := New([]int{0, 0, 1, 1}, 2)
	q := p.Clone()
	p.Swap(0, 1)
	if !p.Equal(q) {
		t.Fatal("same-cluster swap changed the partition")
	}
}

func TestSwapInvolution(t *testing.T) {
	p, _ := Random(16, 4, rand.New(rand.NewSource(7)))
	q := p.Clone()
	p.Swap(3, 9)
	p.Swap(3, 9)
	if !p.Equal(q) {
		t.Fatal("double swap is not the identity")
	}
}

func TestCloneIndependent(t *testing.T) {
	p, _ := New([]int{0, 1}, 2)
	q := p.Clone()
	p.Swap(0, 1)
	if q.Cluster(0) != 0 {
		t.Fatal("Clone shares state with original")
	}
}

func TestEqual(t *testing.T) {
	a, _ := New([]int{0, 1}, 2)
	b, _ := New([]int{0, 1}, 2)
	c, _ := New([]int{1, 0}, 2)
	if !a.Equal(b) {
		t.Fatal("identical partitions not Equal")
	}
	if a.Equal(c) {
		t.Fatal("different partitions Equal")
	}
	if a.Equal(nil) {
		t.Fatal("nil partition Equal")
	}
	d, _ := New([]int{0, 1, 2}, 3)
	if a.Equal(d) {
		t.Fatal("different sizes Equal")
	}
}

func TestCanonical(t *testing.T) {
	// Same partition, different labels.
	a, _ := New([]int{1, 1, 0, 0}, 2)
	b, _ := New([]int{0, 0, 1, 1}, 2)
	if !a.Canonical().Equal(b.Canonical()) {
		t.Fatal("canonical forms of relabeled partitions differ")
	}
	// Canonical labels clusters by smallest member: switch 0's cluster is 0.
	if a.Canonical().Cluster(0) != 0 {
		t.Fatal("canonical cluster of switch 0 must be 0")
	}
}

func TestString(t *testing.T) {
	p, _ := New([]int{1, 0, 1, 0}, 2)
	want := "(0,2) (1,3)"
	if got := p.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestAssignCopy(t *testing.T) {
	p, _ := New([]int{0, 1}, 2)
	a := p.Assign()
	a[0] = 1
	if p.Cluster(0) != 0 {
		t.Fatal("Assign exposed internal storage")
	}
}

func TestPartitionJSONRoundTrip(t *testing.T) {
	p, err := Random(16, 4, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalPartitionJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(back) {
		t.Fatal("JSON round trip changed the partition")
	}
	if _, err := UnmarshalPartitionJSON([]byte(`{"clusters":2,"assign":[0,5]}`)); err == nil {
		t.Fatal("invalid assignment accepted")
	}
	if _, err := UnmarshalPartitionJSON([]byte(`junk`)); err == nil {
		t.Fatal("junk accepted")
	}
}

// Property: any sequence of random swaps preserves the cluster-size
// multiset and keeps assign/members/pos consistent.
func TestQuickSwapConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, err := Random(16, 4, rng)
		if err != nil {
			return false
		}
		for k := 0; k < 50; k++ {
			p.Swap(rng.Intn(16), rng.Intn(16))
		}
		// Sizes preserved.
		for c := 0; c < 4; c++ {
			if p.Size(c) != 4 {
				return false
			}
		}
		// Members consistent with assign.
		seen := map[int]bool{}
		for c := 0; c < 4; c++ {
			for _, s := range p.MembersUnordered(c) {
				if p.Cluster(s) != c || seen[s] {
					return false
				}
				seen[s] = true
			}
		}
		return len(seen) == 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
