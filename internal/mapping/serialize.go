package mapping

import (
	"encoding/json"
	"fmt"
)

// partitionJSON is the wire form of a Partition.
type partitionJSON struct {
	Clusters int   `json:"clusters"`
	Assign   []int `json:"assign"`
}

// MarshalJSON encodes the partition as its switch→cluster assignment.
func (p *Partition) MarshalJSON() ([]byte, error) {
	return json.Marshal(partitionJSON{Clusters: p.M(), Assign: p.assign})
}

// UnmarshalPartitionJSON decodes a partition written by MarshalJSON,
// re-running full validation.
func UnmarshalPartitionJSON(data []byte) (*Partition, error) {
	var w partitionJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("mapping: decoding partition: %w", err)
	}
	return New(w.Assign, w.Clusters)
}
