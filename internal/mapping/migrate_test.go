package mapping

import (
	"math/rand"
	"testing"
)

func TestMovesCountsLabelChanges(t *testing.T) {
	a, err := New([]int{0, 0, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New([]int{0, 1, 0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := Moves(a, a); err != nil || n != 0 {
		t.Fatalf("Moves(a,a) = %d, %v", n, err)
	}
	if n, err := Moves(a, b); err != nil || n != 2 {
		t.Fatalf("Moves(a,b) = %d, %v, want 2", n, err)
	}
}

func TestMovesValidation(t *testing.T) {
	a, _ := New([]int{0, 0, 1, 1}, 2)
	short, _ := New([]int{0, 1}, 2)
	more, _ := New([]int{0, 1, 2, 3}, 4)
	if _, err := Moves(nil, a); err == nil {
		t.Fatal("nil from accepted")
	}
	if _, err := Moves(a, short); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := Moves(a, more); err == nil {
		t.Fatal("cluster-count mismatch accepted")
	}
}

func TestMinMovesIgnoresRelabeling(t *testing.T) {
	a, _ := New([]int{0, 0, 1, 1}, 2)
	// Same partition with labels swapped: zero genuine movement.
	b, _ := New([]int{1, 1, 0, 0}, 2)
	if n, err := MinMoves(a, b); err != nil || n != 0 {
		t.Fatalf("MinMoves over relabeling = %d, %v, want 0", n, err)
	}
	if n, err := Moves(a, b); err != nil || n != 4 {
		t.Fatalf("raw Moves over relabeling = %d, %v, want 4", n, err)
	}
}

func TestMinMovesNeverExceedsMoves(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		a, err := Random(16, 4, rng)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Random(16, 4, rng)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := Moves(a, b)
		if err != nil {
			t.Fatal(err)
		}
		min, err := MinMoves(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if min > raw {
			t.Fatalf("MinMoves %d > Moves %d", min, raw)
		}
		if min < 0 || min > 16 {
			t.Fatalf("MinMoves %d out of range", min)
		}
	}
}

func TestMinMovesSingleSwap(t *testing.T) {
	a, _ := New([]int{0, 0, 1, 1, 2, 2}, 3)
	b := a.Clone()
	b.Swap(0, 2)
	n, err := MinMoves(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("one swap = %d moves, want 2", n)
	}
}

func TestMinMovesGreedyPath(t *testing.T) {
	// 9 clusters forces the greedy matching; identity must still be 0.
	assign := make([]int, 18)
	for s := range assign {
		assign[s] = s / 2
	}
	a, err := New(assign, 9)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := MinMoves(a, a.Clone()); err != nil || n != 0 {
		t.Fatalf("greedy MinMoves(identity) = %d, %v", n, err)
	}
}
