package mapping

import (
	"fmt"

	"commsched/internal/topology"
)

// ProcessMap is the full process→processor mapping induced by a switch
// partition: logical cluster c's processes occupy, in order, the
// workstations of the switches assigned to cluster c. It is what the
// traffic generator consumes.
type ProcessMap struct {
	hostCluster []int   // host -> logical cluster
	clusterHost [][]int // cluster -> hosts, ascending
}

// NewProcessMap expands a switch partition over a network into the
// host-level mapping. The partition must cover exactly the network's
// switches.
func NewProcessMap(net *topology.Network, p *Partition) (*ProcessMap, error) {
	if p.N() != net.Switches() {
		return nil, fmt.Errorf("mapping: partition covers %d switches, network has %d", p.N(), net.Switches())
	}
	pm := &ProcessMap{
		hostCluster: make([]int, net.Hosts()),
		clusterHost: make([][]int, p.M()),
	}
	for s := 0; s < net.Switches(); s++ {
		c := p.Cluster(s)
		for _, h := range net.SwitchHosts(s) {
			pm.hostCluster[h] = c
			pm.clusterHost[c] = append(pm.clusterHost[c], h)
		}
	}
	return pm, nil
}

// Hosts returns the total number of hosts (== processes, one per
// processor).
func (pm *ProcessMap) Hosts() int { return len(pm.hostCluster) }

// Clusters returns the number of logical clusters.
func (pm *ProcessMap) Clusters() int { return len(pm.clusterHost) }

// HostCluster returns the logical cluster whose process runs on host h.
func (pm *ProcessMap) HostCluster(h int) int { return pm.hostCluster[h] }

// ClusterHosts returns the hosts executing cluster c's processes,
// ascending. The returned slice is shared; callers must not modify it.
func (pm *ProcessMap) ClusterHosts(c int) []int { return pm.clusterHost[c] }

// Peers returns the hosts in the same logical cluster as h, excluding h
// itself — the destination set for h's intra-cluster traffic.
func (pm *ProcessMap) Peers(h int) []int {
	all := pm.clusterHost[pm.hostCluster[h]]
	out := make([]int, 0, len(all)-1)
	for _, other := range all {
		if other != h {
			out = append(out, other)
		}
	}
	return out
}
