// Package mapping represents mappings of processes to processors as the
// paper reduces them: under the simplifying assumptions (one process per
// processor, every process of a logical cluster mapped to hosts of the
// same switch set, cluster sizes integer multiples of the hosts per
// switch), a mapping is exactly a partition of the network switches into
// M clusters — one switch cluster per logical cluster of processes.
package mapping

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Partition assigns every switch to exactly one cluster. It is mutable
// through Swap (the move the paper's Tabu search uses) and keeps its
// per-cluster member lists incrementally up to date.
type Partition struct {
	assign  []int   // switch -> cluster
	members [][]int // cluster -> member switches (unordered)
	pos     []int   // switch -> index within members[assign[switch]]
}

// New validates assign (every label in [0,m), every cluster non-empty)
// and builds a partition. The slice is copied.
func New(assign []int, m int) (*Partition, error) {
	if m <= 0 {
		return nil, fmt.Errorf("mapping: need at least one cluster, got %d", m)
	}
	if len(assign) == 0 {
		return nil, fmt.Errorf("mapping: empty assignment")
	}
	p := &Partition{
		assign:  make([]int, len(assign)),
		members: make([][]int, m),
		pos:     make([]int, len(assign)),
	}
	copy(p.assign, assign)
	for s, c := range p.assign {
		if c < 0 || c >= m {
			return nil, fmt.Errorf("mapping: switch %d assigned to cluster %d, want [0,%d)", s, c, m)
		}
		p.pos[s] = len(p.members[c])
		p.members[c] = append(p.members[c], s)
	}
	for c, ms := range p.members {
		if len(ms) == 0 {
			return nil, fmt.Errorf("mapping: cluster %d is empty", c)
		}
	}
	return p, nil
}

// Balanced builds the canonical contiguous partition of n switches into m
// equal clusters (switch s goes to cluster s/(n/m)). n must be divisible
// by m — the paper's setting (4 clusters of N/4 switches).
func Balanced(n, m int) (*Partition, error) {
	if m <= 0 || n <= 0 || n%m != 0 {
		return nil, fmt.Errorf("mapping: cannot split %d switches into %d equal clusters", n, m)
	}
	per := n / m
	assign := make([]int, n)
	for s := range assign {
		assign[s] = s / per
	}
	return New(assign, m)
}

// Random builds a uniformly random balanced partition of n switches into
// m equal clusters — the paper's random mapping baseline.
func Random(n, m int, rng *rand.Rand) (*Partition, error) {
	if m <= 0 || n <= 0 || n%m != 0 {
		return nil, fmt.Errorf("mapping: cannot split %d switches into %d equal clusters", n, m)
	}
	per := n / m
	perm := rng.Perm(n)
	assign := make([]int, n)
	for i, s := range perm {
		assign[s] = i / per
	}
	return New(assign, m)
}

// RandomSizes builds a random partition with the given cluster sizes
// (supporting the unequal communication-requirement extension). The sizes
// must sum to the number of switches.
func RandomSizes(sizes []int, rng *rand.Rand) (*Partition, error) {
	n := 0
	for c, sz := range sizes {
		if sz <= 0 {
			return nil, fmt.Errorf("mapping: cluster %d has non-positive size %d", c, sz)
		}
		n += sz
	}
	if n == 0 {
		return nil, fmt.Errorf("mapping: no clusters")
	}
	perm := rng.Perm(n)
	assign := make([]int, n)
	i := 0
	for c, sz := range sizes {
		for k := 0; k < sz; k++ {
			assign[perm[i]] = c
			i++
		}
	}
	return New(assign, len(sizes))
}

// N returns the number of switches.
func (p *Partition) N() int { return len(p.assign) }

// M returns the number of clusters.
func (p *Partition) M() int { return len(p.members) }

// Cluster returns the cluster of switch s.
func (p *Partition) Cluster(s int) int { return p.assign[s] }

// Size returns the number of switches in cluster c.
func (p *Partition) Size(c int) int { return len(p.members[c]) }

// Members returns the switches of cluster c, sorted ascending (a copy).
func (p *Partition) Members(c int) []int {
	out := make([]int, len(p.members[c]))
	copy(out, p.members[c])
	sort.Ints(out)
	return out
}

// MembersUnordered returns the internal member slice of cluster c, in
// arbitrary order, without copying. Callers must not modify it; it is the
// hot path of the quality evaluator.
func (p *Partition) MembersUnordered(c int) []int { return p.members[c] }

// Assign returns a copy of the switch→cluster assignment.
func (p *Partition) Assign() []int {
	out := make([]int, len(p.assign))
	copy(out, p.assign)
	return out
}

// Clone returns an independent copy of the partition.
func (p *Partition) Clone() *Partition {
	cp := &Partition{
		assign:  make([]int, len(p.assign)),
		members: make([][]int, len(p.members)),
		pos:     make([]int, len(p.pos)),
	}
	copy(cp.assign, p.assign)
	copy(cp.pos, p.pos)
	for c, ms := range p.members {
		cp.members[c] = make([]int, len(ms))
		copy(cp.members[c], ms)
	}
	return cp
}

// Swap exchanges the clusters of switches u and v — the elementary move of
// the paper's Tabu search. Swapping within the same cluster is a no-op.
func (p *Partition) Swap(u, v int) {
	cu, cv := p.assign[u], p.assign[v]
	if cu == cv {
		return
	}
	pu, pv := p.pos[u], p.pos[v]
	p.members[cu][pu] = v
	p.members[cv][pv] = u
	p.pos[u], p.pos[v] = pv, pu
	p.assign[u], p.assign[v] = cv, cu
}

// Equal reports whether q assigns every switch to the same cluster label
// as p.
func (p *Partition) Equal(q *Partition) bool {
	if q == nil || len(p.assign) != len(q.assign) || len(p.members) != len(q.members) {
		return false
	}
	for s := range p.assign {
		if p.assign[s] != q.assign[s] {
			return false
		}
	}
	return true
}

// Canonical returns a copy with clusters relabeled in order of their
// smallest member, so that partitions identical up to cluster numbering
// compare Equal. Only valid for comparing partitions with the same
// cluster-size multiset semantics.
func (p *Partition) Canonical() *Partition {
	type clusterKey struct{ min, c int }
	keys := make([]clusterKey, len(p.members))
	for c, ms := range p.members {
		min := ms[0]
		for _, s := range ms {
			if s < min {
				min = s
			}
		}
		keys[c] = clusterKey{min, c}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].min < keys[j].min })
	relabel := make([]int, len(p.members))
	for newC, k := range keys {
		relabel[k.c] = newC
	}
	assign := make([]int, len(p.assign))
	for s, c := range p.assign {
		assign[s] = relabel[c]
	}
	out, err := New(assign, len(p.members))
	if err != nil {
		// Relabeling a valid partition is always valid.
		panic("mapping: canonicalization produced invalid partition: " + err.Error())
	}
	return out
}

// String renders the partition in the paper's Figure 2/4 style:
// "(0,1,11,12) (2,4,7,13) …" with clusters in canonical order.
func (p *Partition) String() string {
	cp := p.Canonical()
	var b strings.Builder
	for c := 0; c < cp.M(); c++ {
		if c > 0 {
			b.WriteByte(' ')
		}
		b.WriteByte('(')
		for i, s := range cp.Members(c) {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", s)
		}
		b.WriteByte(')')
	}
	return b.String()
}
