package mapping

import "fmt"

// Moves counts the switches whose cluster label differs between from and
// to — the raw migration cost of replacing one mapping with another when
// cluster labels are meaningful (e.g. cluster c is application c).
func Moves(from, to *Partition) (int, error) {
	if from == nil || to == nil {
		return 0, fmt.Errorf("mapping: Moves needs two partitions")
	}
	if from.N() != to.N() {
		return 0, fmt.Errorf("mapping: Moves over %d vs %d switches", from.N(), to.N())
	}
	if from.M() != to.M() {
		return 0, fmt.Errorf("mapping: Moves over %d vs %d clusters", from.M(), to.M())
	}
	moved := 0
	for s := 0; s < from.N(); s++ {
		if from.Cluster(s) != to.Cluster(s) {
			moved++
		}
	}
	return moved, nil
}

// MinMoves counts the switches that must change cluster when cluster
// labels are interchangeable: the minimum of Moves over all relabelings
// of to. This is the migration cost of adopting a rescheduled mapping —
// an application can keep its switch set under any label, so only
// genuine switch movements count.
//
// For M ≤ 8 clusters the optimum is found exactly by enumerating label
// permutations; beyond that a greedy maximum-overlap matching gives an
// upper bound on the true cost.
func MinMoves(from, to *Partition) (int, error) {
	if from == nil || to == nil {
		return 0, fmt.Errorf("mapping: MinMoves needs two partitions")
	}
	if from.N() != to.N() {
		return 0, fmt.Errorf("mapping: MinMoves over %d vs %d switches", from.N(), to.N())
	}
	if from.M() != to.M() {
		return 0, fmt.Errorf("mapping: MinMoves over %d vs %d clusters", from.M(), to.M())
	}
	m := from.M()
	// overlap[a][b] = |from cluster a ∩ to cluster b|.
	overlap := make([][]int, m)
	for a := range overlap {
		overlap[a] = make([]int, m)
	}
	for s := 0; s < from.N(); s++ {
		overlap[from.Cluster(s)][to.Cluster(s)]++
	}
	var kept int
	if m <= 8 {
		kept = maxAssignmentExact(overlap)
	} else {
		kept = maxAssignmentGreedy(overlap)
	}
	return from.N() - kept, nil
}

// maxAssignmentExact maximizes Σ overlap[a][perm(a)] over all label
// permutations by recursive enumeration with a bitmask of used columns.
func maxAssignmentExact(overlap [][]int) int {
	m := len(overlap)
	best := 0
	var rec func(row, used, sum int)
	rec = func(row, used, sum int) {
		if row == m {
			if sum > best {
				best = sum
			}
			return
		}
		for col := 0; col < m; col++ {
			if used&(1<<col) == 0 {
				rec(row+1, used|1<<col, sum+overlap[row][col])
			}
		}
	}
	rec(0, 0, 0)
	return best
}

// maxAssignmentGreedy repeatedly matches the unused (row, col) pair with
// the largest overlap — a fast 2-approximation for large cluster counts.
func maxAssignmentGreedy(overlap [][]int) int {
	m := len(overlap)
	usedRow := make([]bool, m)
	usedCol := make([]bool, m)
	total := 0
	for k := 0; k < m; k++ {
		bestA, bestB, bestV := -1, -1, -1
		for a := 0; a < m; a++ {
			if usedRow[a] {
				continue
			}
			for b := 0; b < m; b++ {
				if usedCol[b] {
					continue
				}
				if overlap[a][b] > bestV {
					bestA, bestB, bestV = a, b, overlap[a][b]
				}
			}
		}
		usedRow[bestA], usedCol[bestB] = true, true
		total += bestV
	}
	return total
}
