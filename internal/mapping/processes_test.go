package mapping

import (
	"math/rand"
	"testing"

	"commsched/internal/topology"
)

func testNet(t *testing.T, switches int) *topology.Network {
	t.Helper()
	net, err := topology.RandomIrregular(switches, 3, rand.New(rand.NewSource(1)), topology.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNewProcessMap(t *testing.T) {
	net := testNet(t, 8) // 32 hosts
	p, err := Balanced(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := NewProcessMap(net, p)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Hosts() != 32 || pm.Clusters() != 4 {
		t.Fatalf("Hosts=%d Clusters=%d", pm.Hosts(), pm.Clusters())
	}
	// Switch 0 and 1 are cluster 0; their 8 hosts belong to cluster 0.
	for h := 0; h < 8; h++ {
		if pm.HostCluster(h) != 0 {
			t.Fatalf("host %d cluster = %d, want 0", h, pm.HostCluster(h))
		}
	}
	if got := len(pm.ClusterHosts(0)); got != 8 {
		t.Fatalf("cluster 0 hosts = %d, want 8", got)
	}
}

func TestNewProcessMapSizeMismatch(t *testing.T) {
	net := testNet(t, 8)
	p, _ := Balanced(4, 2)
	if _, err := NewProcessMap(net, p); err == nil {
		t.Fatal("partition/network size mismatch accepted")
	}
}

func TestPeersExcludesSelf(t *testing.T) {
	net := testNet(t, 8)
	p, _ := Balanced(8, 4)
	pm, err := NewProcessMap(net, p)
	if err != nil {
		t.Fatal(err)
	}
	peers := pm.Peers(3)
	if len(peers) != 7 {
		t.Fatalf("Peers(3) = %d hosts, want 7", len(peers))
	}
	for _, h := range peers {
		if h == 3 {
			t.Fatal("Peers included the host itself")
		}
		if pm.HostCluster(h) != pm.HostCluster(3) {
			t.Fatal("Peers crossed clusters")
		}
	}
}

func TestProcessMapCoversAllHostsOnce(t *testing.T) {
	net := testNet(t, 12)
	p, err := Random(12, 4, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	pm, err := NewProcessMap(net, p)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, pm.Hosts())
	total := 0
	for c := 0; c < pm.Clusters(); c++ {
		for _, h := range pm.ClusterHosts(c) {
			if seen[h] {
				t.Fatalf("host %d appears in two clusters", h)
			}
			seen[h] = true
			total++
		}
	}
	if total != pm.Hosts() {
		t.Fatalf("clusters cover %d hosts, want %d", total, pm.Hosts())
	}
}
