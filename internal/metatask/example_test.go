package metatask_test

import (
	"fmt"
	"log"

	"commsched/internal/metatask"
)

// Example maps three tasks onto two machines with every heuristic.
func Example() {
	etc, err := metatask.NewETC([][]float64{
		{2, 4}, // task 0: machine 0 is twice as fast
		{6, 3}, // task 1: machine 1 is twice as fast
		{2, 2}, // task 2: indifferent
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range metatask.All() {
		s := h.Map(etc)
		fmt.Printf("%-8s makespan %.0f\n", h.Name(), s.Makespan)
	}
	// Min-min greedily grabs the small tasks first and pays for it here —
	// a reminder that the heuristic ranking is statistical, not pointwise.
	// Output:
	// olb      makespan 4
	// met      makespan 4
	// mct      makespan 4
	// min-min  makespan 5
	// max-min  makespan 4
}

// ExampleGenerateETC builds a consistent heterogeneous workload.
func ExampleGenerateETC() {
	// Deterministic generation is seed-driven; here we only show shape.
	etcSmall, err := metatask.NewETC([][]float64{{1, 2, 3}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(etcSmall.Tasks, "task on", etcSmall.Machines, "machines")
	// Output:
	// 1 task on 3 machines
}
