// Package metatask implements the computational side of scheduling in
// heterogeneous systems that the paper builds on (its references [1], [6],
// [12], [16]): mapping a bag of independent tasks onto machines of
// different computing power to minimize makespan, with the classic static
// heuristics of Braun et al. — OLB, MET (the paper's "User-Directed
// Assignment"), MCT ("Fast Greedy"), Min-min, and Max-min.
//
// The expected time to compute (ETC) matrix abstracts machine
// heterogeneity; generators for consistent, inconsistent, and
// semi-consistent ETC matrices follow the standard range-based method.
package metatask

import (
	"fmt"
	"math/rand"
)

// ETC is the expected-time-to-compute matrix: ETC[t][m] is task t's
// runtime on machine m.
type ETC struct {
	Tasks, Machines int
	Time            [][]float64
}

// NewETC validates and wraps a runtime matrix.
func NewETC(time [][]float64) (*ETC, error) {
	if len(time) == 0 || len(time[0]) == 0 {
		return nil, fmt.Errorf("metatask: empty ETC matrix")
	}
	machines := len(time[0])
	for t, row := range time {
		if len(row) != machines {
			return nil, fmt.Errorf("metatask: ragged ETC row %d", t)
		}
		for m, v := range row {
			if v <= 0 {
				return nil, fmt.Errorf("metatask: non-positive runtime at task %d machine %d", t, m)
			}
		}
	}
	return &ETC{Tasks: len(time), Machines: machines, Time: time}, nil
}

// Consistency selects the structure of a generated ETC matrix.
type Consistency int

const (
	// Inconsistent: machine speed orderings differ per task (the general
	// heterogeneous case).
	Inconsistent Consistency = iota
	// Consistent: if machine a beats machine b on one task, it does on
	// all (uniformly related machines).
	Consistent
	// SemiConsistent: consistent on even-indexed machines, inconsistent
	// elsewhere.
	SemiConsistent
)

// GenerateETC builds a range-based random ETC matrix: task heterogeneity
// taskVar and machine heterogeneity machVar control the spread
// (Braun et al.'s method: Time[t][m] = base[t] * row[m]).
func GenerateETC(tasks, machines int, taskVar, machVar float64, consistency Consistency, rng *rand.Rand) (*ETC, error) {
	if tasks < 1 || machines < 1 {
		return nil, fmt.Errorf("metatask: need tasks and machines >= 1, got %d/%d", tasks, machines)
	}
	if taskVar <= 0 || machVar <= 0 {
		return nil, fmt.Errorf("metatask: heterogeneity factors must be positive")
	}
	time := make([][]float64, tasks)
	for t := range time {
		base := 1 + rng.Float64()*taskVar
		row := make([]float64, machines)
		for m := range row {
			row[m] = base * (1 + rng.Float64()*machVar)
		}
		if consistency == Consistent {
			sortFloats(row)
		}
		if consistency == SemiConsistent {
			evens := make([]float64, 0, (machines+1)/2)
			for m := 0; m < machines; m += 2 {
				evens = append(evens, row[m])
			}
			sortFloats(evens)
			for i, m := 0, 0; m < machines; m += 2 {
				row[m] = evens[i]
				i++
			}
		}
		time[t] = row
	}
	return NewETC(time)
}

func sortFloats(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Schedule assigns every task to a machine.
type Schedule struct {
	// MachineOf maps task -> machine.
	MachineOf []int
	// Makespan is the maximum machine completion time.
	Makespan float64
	// MachineLoad is each machine's total assigned runtime.
	MachineLoad []float64
}

// evaluate builds the Schedule bookkeeping from an assignment.
func evaluate(etc *ETC, machineOf []int) *Schedule {
	load := make([]float64, etc.Machines)
	for t, m := range machineOf {
		load[m] += etc.Time[t][m]
	}
	mk := 0.0
	for _, l := range load {
		if l > mk {
			mk = l
		}
	}
	return &Schedule{MachineOf: machineOf, Makespan: mk, MachineLoad: load}
}

// Heuristic is a static meta-task mapping heuristic.
type Heuristic interface {
	// Name identifies the heuristic.
	Name() string
	// Map schedules all ETC tasks.
	Map(etc *ETC) *Schedule
}

// OLB is Opportunistic Load Balancing: each task (in index order) goes to
// the machine that becomes ready first, ignoring runtimes.
type OLB struct{}

// Name implements Heuristic.
func (OLB) Name() string { return "olb" }

// Map implements Heuristic.
func (OLB) Map(etc *ETC) *Schedule {
	ready := make([]float64, etc.Machines)
	assign := make([]int, etc.Tasks)
	for t := 0; t < etc.Tasks; t++ {
		best := 0
		for m := 1; m < etc.Machines; m++ {
			if ready[m] < ready[best] {
				best = m
			}
		}
		assign[t] = best
		ready[best] += etc.Time[t][best]
	}
	return evaluate(etc, assign)
}

// MET (minimum execution time, a.k.a. the paper's User-Directed
// Assignment) sends each task to its fastest machine regardless of load.
type MET struct{}

// Name implements Heuristic.
func (MET) Name() string { return "met" }

// Map implements Heuristic.
func (MET) Map(etc *ETC) *Schedule {
	assign := make([]int, etc.Tasks)
	for t := 0; t < etc.Tasks; t++ {
		best := 0
		for m := 1; m < etc.Machines; m++ {
			if etc.Time[t][m] < etc.Time[t][best] {
				best = m
			}
		}
		assign[t] = best
	}
	return evaluate(etc, assign)
}

// MCT (minimum completion time, the paper's "Fast Greedy") assigns each
// task in index order to the machine minimizing its completion time.
type MCT struct{}

// Name implements Heuristic.
func (MCT) Name() string { return "mct" }

// Map implements Heuristic.
func (MCT) Map(etc *ETC) *Schedule {
	ready := make([]float64, etc.Machines)
	assign := make([]int, etc.Tasks)
	for t := 0; t < etc.Tasks; t++ {
		best, bestDone := 0, ready[0]+etc.Time[t][0]
		for m := 1; m < etc.Machines; m++ {
			if done := ready[m] + etc.Time[t][m]; done < bestDone {
				best, bestDone = m, done
			}
		}
		assign[t] = best
		ready[best] = bestDone
	}
	return evaluate(etc, assign)
}

// MinMin repeatedly schedules, among unassigned tasks, the one whose best
// completion time is smallest.
type MinMin struct{}

// Name implements Heuristic.
func (MinMin) Name() string { return "min-min" }

// Map implements Heuristic.
func (MinMin) Map(etc *ETC) *Schedule { return minMaxMin(etc, true) }

// MaxMin repeatedly schedules, among unassigned tasks, the one whose best
// completion time is largest (big tasks first).
type MaxMin struct{}

// Name implements Heuristic.
func (MaxMin) Name() string { return "max-min" }

// Map implements Heuristic.
func (MaxMin) Map(etc *ETC) *Schedule { return minMaxMin(etc, false) }

// minMaxMin is the shared Min-min / Max-min loop.
func minMaxMin(etc *ETC, min bool) *Schedule {
	ready := make([]float64, etc.Machines)
	assign := make([]int, etc.Tasks)
	done := make([]bool, etc.Tasks)
	for scheduled := 0; scheduled < etc.Tasks; scheduled++ {
		pickT, pickM := -1, -1
		var pickDone float64
		for t := 0; t < etc.Tasks; t++ {
			if done[t] {
				continue
			}
			bestM, bestDone := 0, ready[0]+etc.Time[t][0]
			for m := 1; m < etc.Machines; m++ {
				if d := ready[m] + etc.Time[t][m]; d < bestDone {
					bestM, bestDone = m, d
				}
			}
			if pickT < 0 || (min && bestDone < pickDone) || (!min && bestDone > pickDone) {
				pickT, pickM, pickDone = t, bestM, bestDone
			}
		}
		assign[pickT] = pickM
		ready[pickM] = pickDone
		done[pickT] = true
	}
	return evaluate(etc, assign)
}

// LowerBound returns a simple makespan lower bound: max over tasks of the
// fastest runtime, and total fastest work spread over all machines.
func LowerBound(etc *ETC) float64 {
	maxTask, totalBest := 0.0, 0.0
	for t := 0; t < etc.Tasks; t++ {
		best := etc.Time[t][0]
		for m := 1; m < etc.Machines; m++ {
			if etc.Time[t][m] < best {
				best = etc.Time[t][m]
			}
		}
		if best > maxTask {
			maxTask = best
		}
		totalBest += best
	}
	if spread := totalBest / float64(etc.Machines); spread > maxTask {
		return spread
	}
	return maxTask
}

// All returns every heuristic.
func All() []Heuristic {
	return []Heuristic{OLB{}, MET{}, MCT{}, MinMin{}, MaxMin{}}
}
