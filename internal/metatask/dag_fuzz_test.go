package metatask

import (
	"math/rand"
	"testing"
)

// fuzzCheck asserts the generator contract on a successfully generated
// DAG: NewDAG already proved acyclicity, so the target checks the
// single-entry/connectivity spec and cost positivity.
func fuzzCheck(t *testing.T, d *DAG, err error) {
	t.Helper()
	if err != nil {
		return // rejected parameters are fine; panics are not
	}
	if !d.IsSingleEntry() {
		t.Fatalf("%s: generated DAG is not single-entry", d.Name)
	}
	reached := make([]bool, d.Tasks())
	reached[0] = true
	for _, task := range d.Topo() {
		if !reached[task] {
			continue
		}
		for _, ei := range d.Succ(task) {
			reached[d.Edges[ei].To] = true
		}
	}
	for task, ok := range reached {
		if !ok {
			t.Fatalf("%s: task %d unreachable from entry", d.Name, task)
		}
	}
	for _, row := range d.Comp {
		for _, v := range row {
			if v <= 0 {
				t.Fatalf("%s: non-positive compute cost survived", d.Name)
			}
		}
	}
}

// clampDim keeps fuzzed sizes in a range where a run is fast but the
// structural space (multiple layers, duplicates, fan-in collisions) is
// still exercised.
func clampDim(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// FuzzGenerateRandomDAG: for any parameters, the generator must either
// return an error or a DAG that is acyclic (NewDAG), single-entry, and
// fully reachable — never panic.
func FuzzGenerateRandomDAG(f *testing.F) {
	f.Add(10, 3, 0.3, 1.0, 0.5, int64(42))
	f.Add(1, 1, 0.0, 0.5, 0.0, int64(0))
	f.Add(40, 4, 1.0, 2.0, 2.0, int64(7))
	f.Add(5, 2, -0.5, 1.0, 1.0, int64(3))
	f.Fuzz(func(t *testing.T, tasks, procs int, edgeProb, hetero, ccr float64, seed int64) {
		tasks = clampDim(tasks, 1, 64)
		procs = clampDim(procs, 1, 8)
		rng := rand.New(rand.NewSource(seed))
		d, err := GenerateRandomDAG(tasks, procs, edgeProb, hetero, ccr, rng)
		fuzzCheck(t, d, err)
	})
}

// FuzzGenerateLayeredDAG mirrors FuzzGenerateRandomDAG for the layered
// family, whose per-layer fan-out/fan-in repair logic is the riskier
// code path.
func FuzzGenerateLayeredDAG(f *testing.F) {
	f.Add(3, 4, 2, 1.0, 0.8, int64(11))
	f.Add(1, 1, 1, 0.5, 0.0, int64(1))
	f.Add(6, 2, 5, 3.0, 2.5, int64(23))
	f.Fuzz(func(t *testing.T, layers, width, procs int, hetero, ccr float64, seed int64) {
		layers = clampDim(layers, 1, 8)
		width = clampDim(width, 1, 8)
		procs = clampDim(procs, 1, 8)
		rng := rand.New(rand.NewSource(seed))
		d, err := GenerateLayeredDAG(layers, width, procs, hetero, ccr, rng)
		fuzzCheck(t, d, err)
	})
}

// FuzzGenerateForkJoinDAG covers the third family; its structure is
// deterministic given the sizes, so the target mostly guards the
// parameter validation and cost generation.
func FuzzGenerateForkJoinDAG(f *testing.F) {
	f.Add(2, 3, 3, 1.0, 1.0, int64(5))
	f.Add(1, 1, 1, 0.1, 0.0, int64(9))
	f.Fuzz(func(t *testing.T, stages, fanout, procs int, hetero, ccr float64, seed int64) {
		stages = clampDim(stages, 1, 6)
		fanout = clampDim(fanout, 1, 8)
		procs = clampDim(procs, 1, 8)
		rng := rand.New(rand.NewSource(seed))
		d, err := GenerateForkJoinDAG(stages, fanout, procs, hetero, ccr, rng)
		fuzzCheck(t, d, err)
	})
}
