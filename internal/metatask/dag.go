package metatask

// This file extends the meta-task layer from independent tasks to
// precedence-constrained task graphs — the workload shape of real
// heterogeneous systems (and of the HEFT scheduler in internal/heft).
// A DAG couples a per-processor compute-cost matrix (the ETC idea, kept
// per task × processor) with weighted precedence edges carrying the data
// volume each dependency transfers.
//
// Every generated DAG satisfies the single-entry contract: task 0 is the
// unique task without predecessors, so every task is reachable from it
// (predecessor chains strictly descend task indices and can only stop at
// task 0). The fuzz targets in dag_fuzz_test.go enforce this and
// acyclicity for all generator inputs.

import (
	"fmt"
	"math/rand"
)

// DAGEdge is one precedence constraint: To may start only after From has
// finished and Data units have been transferred between their processors.
type DAGEdge struct {
	// From and To are task indices, From strictly before To in every
	// topological order.
	From, To int
	// Data is the transferred volume; the communication delay is
	// Data × cost(proc(From), proc(To)) under the scheduler's comm model.
	Data float64
}

// DAG is a precedence-constrained task graph over heterogeneous
// processors.
type DAG struct {
	// Name labels the instance family ("layered", "forkjoin", ...).
	Name string
	// Comp[t][p] is the compute cost of task t on processor p (> 0).
	Comp [][]float64
	// Edges are the precedence constraints in a fixed (deterministic)
	// order.
	Edges []DAGEdge

	succ, pred [][]int // task -> indices into Edges
	topo       []int   // one valid topological order (deterministic)
}

// NewDAG validates the graph (rectangular positive compute matrix, valid
// and duplicate-free edges, acyclicity) and builds the adjacency and a
// deterministic topological order.
func NewDAG(name string, comp [][]float64, edges []DAGEdge) (*DAG, error) {
	if len(comp) == 0 || len(comp[0]) == 0 {
		return nil, fmt.Errorf("metatask: empty compute matrix")
	}
	procs := len(comp[0])
	for t, row := range comp {
		if len(row) != procs {
			return nil, fmt.Errorf("metatask: ragged compute row %d", t)
		}
		for p, v := range row {
			if v <= 0 {
				return nil, fmt.Errorf("metatask: non-positive compute cost at task %d proc %d", t, p)
			}
		}
	}
	n := len(comp)
	d := &DAG{
		Name:  name,
		Comp:  comp,
		Edges: edges,
		succ:  make([][]int, n),
		pred:  make([][]int, n),
	}
	seen := make(map[[2]int]bool, len(edges))
	for i, e := range edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return nil, fmt.Errorf("metatask: edge %d endpoints (%d,%d) out of range [0,%d)", i, e.From, e.To, n)
		}
		if e.From == e.To {
			return nil, fmt.Errorf("metatask: self-loop on task %d", e.From)
		}
		if e.Data < 0 {
			return nil, fmt.Errorf("metatask: negative data on edge %d->%d", e.From, e.To)
		}
		key := [2]int{e.From, e.To}
		if seen[key] {
			return nil, fmt.Errorf("metatask: duplicate edge %d->%d", e.From, e.To)
		}
		seen[key] = true
		d.succ[e.From] = append(d.succ[e.From], i)
		d.pred[e.To] = append(d.pred[e.To], i)
	}
	topo, err := d.topoOrder()
	if err != nil {
		return nil, err
	}
	d.topo = topo
	return d, nil
}

// topoOrder runs Kahn's algorithm, always extracting the smallest ready
// task index, so the order is a pure function of the edge set.
func (d *DAG) topoOrder() ([]int, error) {
	n := d.Tasks()
	indeg := make([]int, n)
	for _, e := range d.Edges {
		indeg[e.To]++
	}
	order := make([]int, 0, n)
	ready := make([]bool, n)
	for t := 0; t < n; t++ {
		if indeg[t] == 0 {
			ready[t] = true
		}
	}
	for len(order) < n {
		next := -1
		for t := 0; t < n; t++ {
			if ready[t] {
				next = t
				break
			}
		}
		if next < 0 {
			return nil, fmt.Errorf("metatask: cycle in task graph (%d of %d tasks ordered)", len(order), n)
		}
		ready[next] = false
		indeg[next] = -1
		order = append(order, next)
		for _, ei := range d.succ[next] {
			to := d.Edges[ei].To
			indeg[to]--
			if indeg[to] == 0 {
				ready[to] = true
			}
		}
	}
	return order, nil
}

// Tasks returns the number of tasks.
func (d *DAG) Tasks() int { return len(d.Comp) }

// Procs returns the number of processors the compute matrix covers.
func (d *DAG) Procs() int { return len(d.Comp[0]) }

// Succ returns the indices into Edges of task t's outgoing edges.
func (d *DAG) Succ(t int) []int { return d.succ[t] }

// Pred returns the indices into Edges of task t's incoming edges.
func (d *DAG) Pred(t int) []int { return d.pred[t] }

// Topo returns a topological order of the tasks (do not mutate).
func (d *DAG) Topo() []int { return d.topo }

// MeanComp returns the average compute cost of task t across processors —
// the w̄ term of HEFT's upward rank.
func (d *DAG) MeanComp(t int) float64 {
	s := 0.0
	for _, v := range d.Comp[t] {
		s += v
	}
	return s / float64(len(d.Comp[t]))
}

// Clone deep-copies the DAG (generators and the adversarial perturber
// mutate copies, then re-validate through NewDAG).
func (d *DAG) Clone() *DAG {
	comp := make([][]float64, len(d.Comp))
	for t, row := range d.Comp {
		comp[t] = append([]float64(nil), row...)
	}
	edges := append([]DAGEdge(nil), d.Edges...)
	nd, err := NewDAG(d.Name, comp, edges)
	if err != nil {
		// A valid DAG deep-copies into a valid DAG; failure is a
		// programming error.
		panic(fmt.Sprintf("metatask: Clone of valid DAG failed: %v", err))
	}
	return nd
}

// IsSingleEntry reports whether task 0 is the unique entry task — the
// connectivity contract of every generator (it implies all tasks are
// reachable from task 0, since predecessor chains descend indices).
func (d *DAG) IsSingleEntry() bool {
	if d.Tasks() == 0 || len(d.pred[0]) != 0 {
		return false
	}
	for t := 1; t < d.Tasks(); t++ {
		if len(d.pred[t]) == 0 {
			return false
		}
	}
	return true
}

// genComp draws a range-based heterogeneous compute matrix (the ETC
// method of GenerateETC, reused for DAG tasks).
func genComp(tasks, procs int, hetero float64, rng *rand.Rand) [][]float64 {
	comp := make([][]float64, tasks)
	for t := range comp {
		base := 1 + rng.Float64()*hetero
		row := make([]float64, procs)
		for p := range row {
			row[p] = base * (1 + rng.Float64()*hetero)
		}
		comp[t] = row
	}
	return comp
}

// edgeData draws one edge's transfer volume: ccr scales communication
// against the O(hetero²) compute costs the matrix generator produces.
func edgeData(hetero, ccr float64, rng *rand.Rand) float64 {
	return ccr * (1 + hetero) * (0.5 + rng.Float64())
}

// checkDAGParams validates the shared generator parameters.
func checkDAGParams(tasks, procs int, hetero, ccr float64) error {
	if tasks < 1 || procs < 1 {
		return fmt.Errorf("metatask: need tasks and procs >= 1, got %d/%d", tasks, procs)
	}
	if hetero <= 0 {
		return fmt.Errorf("metatask: heterogeneity must be positive, got %g", hetero)
	}
	if ccr < 0 {
		return fmt.Errorf("metatask: CCR must be non-negative, got %g", ccr)
	}
	return nil
}

// ensureSingleEntry gives every task beyond 0 at least one predecessor
// with a smaller index, establishing the single-entry contract without
// ever creating a cycle (added edges always descend to ascend indices).
func ensureSingleEntry(tasks int, edges []DAGEdge, have map[[2]int]bool, hetero, ccr float64, rng *rand.Rand) []DAGEdge {
	hasPred := make([]bool, tasks)
	for _, e := range edges {
		hasPred[e.To] = true
	}
	for t := 1; t < tasks; t++ {
		if hasPred[t] {
			continue
		}
		from := rng.Intn(t)
		for have[[2]int{from, t}] {
			// Duplicate with an existing forward edge cannot happen when
			// hasPred[t] is false, but keep the guard for mutated inputs.
			from = (from + 1) % t
		}
		have[[2]int{from, t}] = true
		edges = append(edges, DAGEdge{From: from, To: t, Data: edgeData(hetero, ccr, rng)})
	}
	return edges
}

// GenerateLayeredDAG builds a layered task graph: `layers` ranks of
// `width` tasks; every task links to 1..width tasks of the next layer and
// every non-entry task keeps at least one predecessor in the previous
// layer. Layer-0 tasks beyond task 0 are attached under task 0 so the
// single-entry contract holds.
func GenerateLayeredDAG(layers, width, procs int, hetero, ccr float64, rng *rand.Rand) (*DAG, error) {
	if layers < 1 || width < 1 {
		return nil, fmt.Errorf("metatask: need layers and width >= 1, got %d/%d", layers, width)
	}
	tasks := layers * width
	if err := checkDAGParams(tasks, procs, hetero, ccr); err != nil {
		return nil, err
	}
	comp := genComp(tasks, procs, hetero, rng)
	var edges []DAGEdge
	have := map[[2]int]bool{}
	add := func(a, b int) {
		if !have[[2]int{a, b}] {
			have[[2]int{a, b}] = true
			edges = append(edges, DAGEdge{From: a, To: b, Data: edgeData(hetero, ccr, rng)})
		}
	}
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			from := l*width + i
			fanout := 1 + rng.Intn(width)
			for k := 0; k < fanout; k++ {
				add(from, (l+1)*width+rng.Intn(width))
			}
		}
		// Every next-layer task needs a predecessor in this layer.
		for j := 0; j < width; j++ {
			to := (l+1)*width + j
			hasPred := false
			for a := 0; a < width && !hasPred; a++ {
				hasPred = have[[2]int{l*width + a, to}]
			}
			if !hasPred {
				add(l*width+rng.Intn(width), to)
			}
		}
	}
	edges = ensureSingleEntry(tasks, edges, have, hetero, ccr, rng)
	return NewDAG("layered", comp, edges)
}

// GenerateForkJoinDAG builds `stages` sequential fork-join diamonds: a
// fork task fans out to `fanout` parallel tasks which join into a single
// task feeding the next stage.
func GenerateForkJoinDAG(stages, fanout, procs int, hetero, ccr float64, rng *rand.Rand) (*DAG, error) {
	if stages < 1 || fanout < 1 {
		return nil, fmt.Errorf("metatask: need stages and fanout >= 1, got %d/%d", stages, fanout)
	}
	tasks := stages*(fanout+1) + 1
	if err := checkDAGParams(tasks, procs, hetero, ccr); err != nil {
		return nil, err
	}
	comp := genComp(tasks, procs, hetero, rng)
	var edges []DAGEdge
	fork := 0
	for s := 0; s < stages; s++ {
		base := s*(fanout+1) + 1
		join := base + fanout
		for i := 0; i < fanout; i++ {
			edges = append(edges,
				DAGEdge{From: fork, To: base + i, Data: edgeData(hetero, ccr, rng)},
				DAGEdge{From: base + i, To: join, Data: edgeData(hetero, ccr, rng)})
		}
		fork = join
	}
	return NewDAG("forkjoin", comp, edges)
}

// GenerateRandomDAG builds an Erdős–Rényi-style random DAG: each forward
// pair (i, j), i < j, becomes an edge with probability edgeProb, and the
// single-entry pass then guarantees connectivity. Acyclicity is
// structural: every edge ascends task indices.
func GenerateRandomDAG(tasks, procs int, edgeProb, hetero, ccr float64, rng *rand.Rand) (*DAG, error) {
	if err := checkDAGParams(tasks, procs, hetero, ccr); err != nil {
		return nil, err
	}
	if edgeProb < 0 || edgeProb > 1 {
		return nil, fmt.Errorf("metatask: edge probability %g outside [0,1]", edgeProb)
	}
	comp := genComp(tasks, procs, hetero, rng)
	var edges []DAGEdge
	have := map[[2]int]bool{}
	for i := 0; i < tasks; i++ {
		for j := i + 1; j < tasks; j++ {
			if rng.Float64() < edgeProb {
				have[[2]int{i, j}] = true
				edges = append(edges, DAGEdge{From: i, To: j, Data: edgeData(hetero, ccr, rng)})
			}
		}
	}
	edges = ensureSingleEntry(tasks, edges, have, hetero, ccr, rng)
	return NewDAG("random", comp, edges)
}
