package metatask

import (
	"math/rand"
	"testing"
)

func TestNewDAGValidation(t *testing.T) {
	comp := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	cases := []struct {
		name  string
		comp  [][]float64
		edges []DAGEdge
	}{
		{"empty matrix", nil, nil},
		{"ragged", [][]float64{{1, 2}, {3}}, nil},
		{"non-positive cost", [][]float64{{1, 0}}, nil},
		{"edge out of range", comp, []DAGEdge{{From: 0, To: 9, Data: 1}}},
		{"self loop", comp, []DAGEdge{{From: 1, To: 1, Data: 1}}},
		{"negative data", comp, []DAGEdge{{From: 0, To: 1, Data: -1}}},
		{"duplicate edge", comp, []DAGEdge{{From: 0, To: 1, Data: 1}, {From: 0, To: 1, Data: 2}}},
		{"cycle", comp, []DAGEdge{{From: 0, To: 1, Data: 1}, {From: 1, To: 2, Data: 1}, {From: 2, To: 0, Data: 1}}},
	}
	for _, c := range cases {
		if _, err := NewDAG("bad", c.comp, c.edges); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestDAGTopoRespectsEdges(t *testing.T) {
	d, err := NewDAG("t", [][]float64{{1}, {1}, {1}, {1}},
		[]DAGEdge{{From: 0, To: 2, Data: 1}, {From: 2, To: 1, Data: 1}, {From: 0, To: 3, Data: 1}, {From: 3, To: 1, Data: 1}})
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, d.Tasks())
	for i, task := range d.Topo() {
		pos[task] = i
	}
	for _, e := range d.Edges {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("topo order violates edge %d->%d: %v", e.From, e.To, d.Topo())
		}
	}
	if d.MeanComp(0) != 1 {
		t.Fatalf("MeanComp = %v, want 1", d.MeanComp(0))
	}
}

// checkGenerated asserts the generator contract: valid costs, acyclic by
// construction (NewDAG verified it), single entry, and every task
// reachable from task 0.
func checkGenerated(t *testing.T, d *DAG, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsSingleEntry() {
		t.Fatalf("%s: not single-entry", d.Name)
	}
	// Reachability from task 0 over directed edges.
	reached := make([]bool, d.Tasks())
	reached[0] = true
	for _, task := range d.Topo() {
		if !reached[task] {
			continue
		}
		for _, ei := range d.Succ(task) {
			reached[d.Edges[ei].To] = true
		}
	}
	for task, ok := range reached {
		if !ok {
			t.Fatalf("%s: task %d unreachable from entry", d.Name, task)
		}
	}
}

func TestGeneratorsContract(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d, err := GenerateLayeredDAG(4, 3, 4, 1.5, 0.8, rng)
		checkGenerated(t, d, err)
		d, err = GenerateForkJoinDAG(3, 4, 3, 2, 1.2, rng)
		checkGenerated(t, d, err)
		d, err = GenerateRandomDAG(20, 4, 0.15, 1, 0.5, rng)
		checkGenerated(t, d, err)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	gen := func() *DAG {
		d, err := GenerateRandomDAG(30, 4, 0.2, 1.5, 1, rand.New(rand.NewSource(99)))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	a, b := gen(), gen()
	if len(a.Edges) != len(b.Edges) {
		t.Fatalf("edge counts differ: %d vs %d", len(a.Edges), len(b.Edges))
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, a.Edges[i], b.Edges[i])
		}
	}
	for t2 := range a.Comp {
		for p := range a.Comp[t2] {
			if a.Comp[t2][p] != b.Comp[t2][p] {
				t.Fatalf("comp[%d][%d] differs", t2, p)
			}
		}
	}
}

func TestGeneratorsRejectBadParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := GenerateLayeredDAG(0, 3, 2, 1, 1, rng); err == nil {
		t.Error("layers=0 accepted")
	}
	if _, err := GenerateForkJoinDAG(1, 0, 2, 1, 1, rng); err == nil {
		t.Error("fanout=0 accepted")
	}
	if _, err := GenerateRandomDAG(5, 2, 1.5, 1, 1, rng); err == nil {
		t.Error("edgeProb>1 accepted")
	}
	if _, err := GenerateRandomDAG(5, 2, 0.5, -1, 1, rng); err == nil {
		t.Error("negative hetero accepted")
	}
	if _, err := GenerateRandomDAG(5, 2, 0.5, 1, -1, rng); err == nil {
		t.Error("negative ccr accepted")
	}
}

func TestDAGClone(t *testing.T) {
	d, err := GenerateForkJoinDAG(2, 3, 4, 1, 1, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	c := d.Clone()
	c.Comp[0][0] *= 2
	c.Edges[0].Data *= 2
	if d.Comp[0][0] == c.Comp[0][0] || d.Edges[0].Data == c.Edges[0].Data {
		t.Fatal("Clone shares storage with the original")
	}
}
