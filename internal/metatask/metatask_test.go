package metatask

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewETCValidation(t *testing.T) {
	if _, err := NewETC(nil); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if _, err := NewETC([][]float64{{}}); err == nil {
		t.Fatal("zero machines accepted")
	}
	if _, err := NewETC([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	if _, err := NewETC([][]float64{{1, 0}}); err == nil {
		t.Fatal("zero runtime accepted")
	}
	etc, err := NewETC([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if etc.Tasks != 2 || etc.Machines != 2 {
		t.Fatalf("dims %d/%d", etc.Tasks, etc.Machines)
	}
}

func TestGenerateETCShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	etc, err := GenerateETC(50, 8, 10, 5, Inconsistent, rng)
	if err != nil {
		t.Fatal(err)
	}
	if etc.Tasks != 50 || etc.Machines != 8 {
		t.Fatalf("dims %d/%d", etc.Tasks, etc.Machines)
	}
	for t2 := 0; t2 < 50; t2++ {
		for m := 0; m < 8; m++ {
			if etc.Time[t2][m] <= 0 {
				t.Fatal("non-positive generated runtime")
			}
		}
	}
	if _, err := GenerateETC(0, 8, 1, 1, Inconsistent, rng); err == nil {
		t.Fatal("zero tasks accepted")
	}
	if _, err := GenerateETC(5, 8, 0, 1, Inconsistent, rng); err == nil {
		t.Fatal("zero heterogeneity accepted")
	}
}

func TestGenerateETCConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	etc, err := GenerateETC(30, 6, 10, 5, Consistent, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Consistent: every row is sorted ascending (machine 0 fastest).
	for t2 := 0; t2 < etc.Tasks; t2++ {
		for m := 1; m < etc.Machines; m++ {
			if etc.Time[t2][m] < etc.Time[t2][m-1] {
				t.Fatalf("consistent ETC row %d not sorted", t2)
			}
		}
	}
}

func TestGenerateETCSemiConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	etc, err := GenerateETC(30, 8, 10, 5, SemiConsistent, rng)
	if err != nil {
		t.Fatal(err)
	}
	for t2 := 0; t2 < etc.Tasks; t2++ {
		for m := 2; m < etc.Machines; m += 2 {
			if etc.Time[t2][m] < etc.Time[t2][m-2] {
				t.Fatalf("semi-consistent ETC row %d not sorted on even machines", t2)
			}
		}
	}
}

func TestHeuristicsValidSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	etc, err := GenerateETC(40, 6, 10, 5, Inconsistent, rng)
	if err != nil {
		t.Fatal(err)
	}
	lb := LowerBound(etc)
	for _, h := range All() {
		s := h.Map(etc)
		if len(s.MachineOf) != etc.Tasks {
			t.Fatalf("%s: incomplete schedule", h.Name())
		}
		for task, m := range s.MachineOf {
			if m < 0 || m >= etc.Machines {
				t.Fatalf("%s: task %d on invalid machine %d", h.Name(), task, m)
			}
		}
		// Makespan consistency: max load == makespan, >= lower bound.
		maxLoad := 0.0
		for _, l := range s.MachineLoad {
			if l > maxLoad {
				maxLoad = l
			}
		}
		if math.Abs(maxLoad-s.Makespan) > 1e-9 {
			t.Fatalf("%s: makespan %v != max load %v", h.Name(), s.Makespan, maxLoad)
		}
		if s.Makespan < lb-1e-9 {
			t.Fatalf("%s: makespan %v below lower bound %v", h.Name(), s.Makespan, lb)
		}
	}
}

func TestMETPicksFastestMachine(t *testing.T) {
	etc, err := NewETC([][]float64{
		{5, 1, 9},
		{2, 8, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := MET{}.Map(etc)
	if s.MachineOf[0] != 1 || s.MachineOf[1] != 2 {
		t.Fatalf("MET assignment %v, want [1 2]", s.MachineOf)
	}
}

func TestMCTBalances(t *testing.T) {
	// Two identical machines, four unit tasks: MCT alternates, makespan 2.
	etc, err := NewETC([][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	s := MCT{}.Map(etc)
	if s.Makespan != 2 {
		t.Fatalf("MCT makespan %v, want 2", s.Makespan)
	}
}

func TestMinMinBeatsOLBOnHeterogeneous(t *testing.T) {
	// The classic result (Braun et al., the paper's reference [6]):
	// Min-min produces shorter makespans than OLB on random heterogeneous
	// workloads. Check in expectation across seeds.
	wins := 0
	const trials = 20
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		etc, err := GenerateETC(60, 8, 20, 10, Inconsistent, rng)
		if err != nil {
			t.Fatal(err)
		}
		if (MinMin{}).Map(etc).Makespan < (OLB{}).Map(etc).Makespan {
			wins++
		}
	}
	if wins < trials*3/4 {
		t.Fatalf("min-min beat OLB only %d/%d times", wins, trials)
	}
}

func TestMaxMinFrontLoadsBigTasks(t *testing.T) {
	// One huge task and many small ones on two machines: Max-min places
	// the huge task first and packs small ones elsewhere; its makespan
	// must match the huge task's runtime here.
	time := [][]float64{{10, 10}}
	for i := 0; i < 10; i++ {
		time = append(time, []float64{1, 1})
	}
	etc, err := NewETC(time)
	if err != nil {
		t.Fatal(err)
	}
	s := MaxMin{}.Map(etc)
	if s.Makespan != 10 {
		t.Fatalf("max-min makespan %v, want 10", s.Makespan)
	}
}

func TestLowerBound(t *testing.T) {
	etc, err := NewETC([][]float64{
		{4, 8},
		{4, 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Total best work = 8 over 2 machines = 4; max single best = 4.
	if lb := LowerBound(etc); lb != 4 {
		t.Fatalf("LowerBound = %v, want 4", lb)
	}
}

// Property: every heuristic's makespan is at least the lower bound and at
// most the serial sum of worst-case runtimes.
func TestQuickHeuristicBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		etc, err := GenerateETC(1+rng.Intn(30), 1+rng.Intn(6), 5, 5, Consistency(rng.Intn(3)), rng)
		if err != nil {
			return false
		}
		lb := LowerBound(etc)
		worst := 0.0
		for t := 0; t < etc.Tasks; t++ {
			w := etc.Time[t][0]
			for m := 1; m < etc.Machines; m++ {
				if etc.Time[t][m] > w {
					w = etc.Time[t][m]
				}
			}
			worst += w
		}
		for _, h := range All() {
			mk := h.Map(etc).Makespan
			if mk < lb-1e-9 || mk > worst+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
