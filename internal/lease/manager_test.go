package lease

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openTestManager(t *testing.T, dir, owner string, ttl time.Duration) *Manager {
	t.Helper()
	m, err := Open(dir, owner, ttl)
	if err != nil {
		t.Fatalf("Open(%s): %v", owner, err)
	}
	return m
}

func TestAcquireRenewRelease(t *testing.T) {
	dir := t.TempDir()
	m := openTestManager(t, dir, "w1", time.Minute)
	l, err := m.Acquire("u1", false)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if l.Mode != ModeOwned || l.Token == 0 {
		t.Fatalf("fresh acquire: %+v", l)
	}
	if _, err := m.Acquire("u1", false); !errors.Is(err, ErrHeld) {
		t.Fatalf("second acquire of a held unit: %v, want ErrHeld", err)
	}
	before := l.Expires
	if err := m.Renew(l); err != nil {
		t.Fatalf("Renew: %v", err)
	}
	if !l.Expires.After(before.Add(-time.Second)) {
		t.Fatalf("Renew did not extend: %v -> %v", before, l.Expires)
	}
	m.Release(l)
	if l2, err := m.Acquire("u1", false); err != nil || l2.Token <= l.Token {
		t.Fatalf("re-acquire after release: %+v, %v (prev token %d)", l2, err, l.Token)
	}
}

func TestExpiredLeaseIsReclaimedWithHigherToken(t *testing.T) {
	dir := t.TempDir()
	m1 := openTestManager(t, dir, "w1", time.Minute)
	m2 := openTestManager(t, dir, "w2", time.Minute)
	l1, err := m1.Acquire("u1", false)
	if err != nil {
		t.Fatalf("w1 acquire: %v", err)
	}
	// w2 sees a valid lease...
	if _, err := m2.Acquire("u1", false); !errors.Is(err, ErrHeld) {
		t.Fatalf("w2 acquire while held: %v", err)
	}
	// ...until w1's clock-based deadline passes (simulated by advancing
	// w2's clock past the TTL).
	m2.now = func() time.Time { return time.Now().Add(2 * time.Minute) }
	l2, err := m2.Acquire("u1", false)
	if err != nil {
		t.Fatalf("w2 reclaim: %v", err)
	}
	if l2.Mode != ModeReclaim {
		t.Fatalf("mode %q, want reclaim", l2.Mode)
	}
	if l2.Token <= l1.Token {
		t.Fatalf("fencing violation: reclaim token %d not above original %d", l2.Token, l1.Token)
	}
	// The zombie's renewal must now fail with ErrLost.
	if err := m1.Renew(l1); !errors.Is(err, ErrLost) {
		t.Fatalf("zombie renew: %v, want ErrLost", err)
	}
	s2 := m2.Stats()
	if s2.Reclaimed != 1 {
		t.Fatalf("w2 reclaimed counter %d, want 1", s2.Reclaimed)
	}
	if lats := m2.ReclaimLatencies(); len(lats) != 1 || lats[0] <= 0 {
		t.Fatalf("reclaim latencies %v, want one positive sample", lats)
	}
	if m1.Stats().Lost != 1 {
		t.Fatalf("w1 lost counter %d, want 1", m1.Stats().Lost)
	}
}

func TestTornLeaseIsReclaimable(t *testing.T) {
	dir := t.TempDir()
	m := openTestManager(t, dir, "w1", time.Minute)
	// Simulate a crash between create and write: an empty lease file.
	path := filepath.Join(dir, "lease", "units", "u1.lease")
	if err := os.WriteFile(path, []byte("lease/1 token=9 owner=\"dead\" un"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := m.Acquire("u1", false)
	if err != nil {
		t.Fatalf("acquire over torn lease: %v", err)
	}
	if l.Mode != ModeReclaim {
		t.Fatalf("mode %q, want reclaim", l.Mode)
	}
}

func TestTokensAreUniqueAndMonotonic(t *testing.T) {
	dir := t.TempDir()
	m1 := openTestManager(t, dir, "w1", time.Minute)
	m2 := openTestManager(t, dir, "w2", time.Minute)
	seen := map[uint64]bool{}
	var last uint64
	for i := 0; i < 20; i++ {
		m := m1
		if i%2 == 1 {
			m = m2
		}
		tok, err := m.AllocToken()
		if err != nil {
			t.Fatalf("AllocToken: %v", err)
		}
		if seen[tok] {
			t.Fatalf("token %d allocated twice", tok)
		}
		if tok <= last {
			t.Fatalf("token regression: %d after %d", tok, last)
		}
		seen[tok] = true
		last = tok
	}
}

func TestMarkDoneFirstWins(t *testing.T) {
	dir := t.TempDir()
	m1 := openTestManager(t, dir, "w1", time.Minute)
	m2 := openTestManager(t, dir, "w2", time.Minute)
	won, err := m1.MarkDone("u1", 3, 50*time.Millisecond, nil)
	if err != nil || !won {
		t.Fatalf("first MarkDone: won=%v err=%v", won, err)
	}
	// A speculative duplicate with a higher token still loses the marker.
	won, err = m2.MarkDone("u1", 9, time.Millisecond, nil)
	if err != nil || won {
		t.Fatalf("second MarkDone: won=%v err=%v, want lost", won, err)
	}
	rec, ok := m2.Done("u1")
	if !ok || rec.Token != 3 || rec.Owner != "w1" || rec.Dur != int64(50*time.Millisecond) {
		t.Fatalf("Done record %+v ok=%v, want w1's token-3 marker", rec, ok)
	}
}

func TestDoneMarkerCarriesError(t *testing.T) {
	dir := t.TempDir()
	m := openTestManager(t, dir, "w1", time.Minute)
	if _, err := m.MarkDone("u1", 3, time.Millisecond, errors.New("permanent failure")); err != nil {
		t.Fatal(err)
	}
	rec, ok := m.Done("u1")
	if !ok || rec.Err != "permanent failure" {
		t.Fatalf("done record %+v ok=%v, want carried error", rec, ok)
	}
}

func TestLiveWorkersRegistry(t *testing.T) {
	dir := t.TempDir()
	m1 := openTestManager(t, dir, "w1", time.Minute)
	openTestManager(t, dir, "w2", time.Minute)
	live := m1.LiveWorkers(time.Minute)
	if len(live) != 2 || live[0] != "w1" || live[1] != "w2" {
		t.Fatalf("live workers %v, want [w1 w2]", live)
	}
	// Outside the liveness window only the caller itself remains.
	m1.now = func() time.Time { return time.Now().Add(time.Hour) }
	if live := m1.LiveWorkers(time.Minute); len(live) != 1 || live[0] != "w1" {
		t.Fatalf("live workers after expiry %v, want [w1]", live)
	}
}

func TestSanitizedUnitNamesStayDistinct(t *testing.T) {
	dir := t.TempDir()
	m := openTestManager(t, dir, "w1", time.Minute)
	units := []string{"a/b", "a%2fb", "a\\b", "plain"}
	for _, u := range units {
		if _, err := m.Acquire(u, false); err != nil {
			t.Fatalf("Acquire(%q): %v", u, err)
		}
	}
	for _, u := range units {
		if _, err := m.Acquire(u, false); !errors.Is(err, ErrHeld) {
			t.Fatalf("re-acquire %q: %v, want ErrHeld (collision?)", u, err)
		}
	}
}
