package lease

import (
	"errors"
	"strings"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	cases := []Record{
		{Token: 1, Owner: "w1", Unit: "sweep/p1"},
		{Token: 7, Owner: "host-42", Unit: "par.foreach~18~deadbeef~0/i000003", Expires: 1712345678901234567},
		{Token: 18446744073709551615, Owner: `we"ird owner`, Unit: "u\twith\ttabs", Expires: -5},
		{Token: 3, Owner: "w2", Unit: "done-unit", Expires: 99, Dur: 123456789},
		{Token: 4, Owner: "w3", Unit: "failed-unit", Expires: 99, Dur: 42, Err: "boom: deadline exceeded"},
		{Token: 5, Owner: "w4", Unit: "u", Expires: 0, Err: `quoted "err" with \ backslash`},
	}
	for _, want := range cases {
		line := want.String()
		if !strings.HasSuffix(line, "\n") {
			t.Fatalf("String() not newline-terminated: %q", line)
		}
		got, err := Parse([]byte(line))
		if err != nil {
			t.Fatalf("Parse(%q): %v", line, err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
		// The newline is the terminator: without it the record is torn.
		if _, err := Parse([]byte(strings.TrimSuffix(line, "\n"))); err == nil {
			t.Fatalf("Parse accepted unterminated record %q", line)
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	good := Record{Token: 7, Owner: "w1", Unit: "u1", Expires: 99}.String()
	bad := []string{
		"",
		"lease/2 token=7 owner=\"w\" unit=\"u\" expires=1\n", // wrong version
		"nonsense\n", // no magic
		"lease/1 token=7 owner=\"w\" unit=\"u\"\n",                   // missing expires
		"lease/1 owner=\"w\" unit=\"u\" expires=1\n",                 // missing token
		"lease/1 token=0 owner=\"w\" unit=\"u\" expires=1\n",         // reserved token
		"lease/1 token=7 token=8 owner=\"w\" unit=\"u\" expires=1\n", // duplicate key
		"lease/1 token=7 owner=\"w\" unit=\"u\" expires=1 zap=3\n",   // unknown key
		"lease/1 token=x owner=\"w\" unit=\"u\" expires=1\n",         // bad number
		"lease/1 token=7 owner=\"w unit=\"u\" expires=1\n",           // unterminated quote
		"lease/1 token=-1 owner=\"w\" unit=\"u\" expires=1\n",        // negative token
		"lease/1 token=7 owner=\"w\" unit=\"u\"\nexpires=1\n",        // embedded newline
		good[:len(good)-8], // torn tail must not parse as a shorter valid record
	}
	for _, s := range bad {
		if rec, err := Parse([]byte(s)); err == nil {
			t.Errorf("Parse(%q) = %+v, want error", s, rec)
		} else if !errors.Is(err, ErrBadRecord) {
			t.Errorf("Parse(%q) error %v does not wrap ErrBadRecord", s, err)
		}
	}
}

// TestParsePrefixSafety asserts the torn-write property exhaustively:
// no strict prefix of a valid record parses successfully.
func TestParsePrefixSafety(t *testing.T) {
	full := Record{Token: 987, Owner: "worker-3", Unit: "sweep/i07", Expires: 1712345678, Dur: 31415, Err: "x"}.String()
	for cut := 0; cut < len(full)-1; cut++ {
		if rec, err := Parse([]byte(full[:cut])); err == nil {
			// The only acceptable "prefix" is the full record minus '\n'.
			t.Fatalf("prefix of len %d parsed as %+v", cut, rec)
		}
	}
}
