package lease

import (
	"strings"
	"testing"
)

// FuzzParseRecord hammers the lease-file wire parser with arbitrary
// bytes. Parse guards every trust decision in the protocol (who holds a
// lease, which completion won), so its contract is checked from both
// directions:
//
//   - no input may panic it, and a rejected input must report
//     ErrBadRecord (checked implicitly: Parse returns, never aborts);
//   - every accepted input must re-encode and re-parse to the same
//     Record (canonical round trip), with the invariants the manager
//     relies on: nonzero token, no embedded newlines in any field's
//     rendering.
func FuzzParseRecord(f *testing.F) {
	seeds := []string{
		Record{Token: 1, Owner: "w1", Unit: "u1", Expires: 1712000000000000000}.String(),
		Record{Token: 42, Owner: "host-7", Unit: "par.foreach~18~00ff~0/i000003", Expires: 99, Dur: 1234567}.String(),
		Record{Token: 9, Owner: `q"uote`, Unit: "u\\x", Expires: -1, Err: "deadline exceeded"}.String(),
		Record{Token: 18446744073709551615, Owner: "", Unit: "", Expires: 0}.String(),
		"lease/1 token=0 owner=\"w\" unit=\"u\" expires=1\n",
		"lease/1 token=7 owner=\"w\" unit=\"u\" expires=1", // unterminated
		"lease/2 token=7 owner=\"w\" unit=\"u\" expires=1\n",
		"lease/1 token=7 owner=\"w\" unit=\"u\" expires=1 dur=5 err=\"x\"\n",
		"lease/1  token=7\n",
		"",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := Parse(data)
		if err != nil {
			return
		}
		// Accepted records obey the manager's invariants.
		if rec.Token == 0 {
			t.Fatalf("accepted reserved token 0: %q", data)
		}
		line := rec.String()
		if strings.Count(line, "\n") != 1 || !strings.HasSuffix(line, "\n") {
			t.Fatalf("re-encoding of %+v is not one terminated line: %q", rec, line)
		}
		back, err := Parse([]byte(line))
		if err != nil {
			t.Fatalf("re-parse of %q: %v", line, err)
		}
		if back != rec {
			t.Fatalf("round trip drift: %+v -> %q -> %+v", rec, line, back)
		}
	})
}
