package lease

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"commsched/internal/obs"
	"commsched/internal/par"
	"commsched/internal/runstate"
)

// PoolOptions tune the distributed pool; the zero value is sensible.
type PoolOptions struct {
	// Speculate enables duplicate execution of stragglers: a unit held by
	// another worker longer than SpecFactor × the p95 duration of
	// completed siblings is re-run here under a fresh fencing token.
	Speculate bool
	// SpecFactor scales the straggler threshold (default 2.0).
	SpecFactor float64
	// Slots bounds the local goroutines executing units (default
	// GOMAXPROCS).
	Slots int
}

// PoolStats snapshots the pool's counters: the lease manager's protocol
// stats plus the pool's own execution accounting.
type PoolStats struct {
	Stats
	// Executed counts units this worker computed under a lease.
	Executed int64 `json:"executed"`
	// Replayed counts units another worker completed that this worker
	// replayed from the shared store.
	Replayed int64 `json:"replayed"`
	// SpecRuns/SpecWins/SpecLosses count speculative duplicate executions
	// and whether they beat the original holder to the done marker.
	SpecRuns   int64 `json:"spec_runs"`
	SpecWins   int64 `json:"spec_wins"`
	SpecLosses int64 `json:"spec_losses"`
}

// Pool is the lease-backed par.Executor: every worker process runs the
// same deterministic program, and when a loop reaches the pool its
// units are fanned out across the workers sharing the checkpoint
// directory. Units are claimed through Manager leases, results land in
// the shared runstate journals under fencing tokens, and a unit
// completed remotely is replayed locally from the merged store — so
// every worker still materializes the full result set, byte-identical
// to a serial run.
type Pool struct {
	m    *Manager
	opts PoolOptions

	// seq numbers loops per (name, n, scope) identity. All workers run
	// the identical program, so their sequence counters agree and the
	// derived loop IDs (and thus unit IDs) match across processes.
	seqMu sync.Mutex
	seq   map[string]int

	executed   atomic.Int64
	replayed   atomic.Int64
	specRuns   atomic.Int64
	specWins   atomic.Int64
	specLosses atomic.Int64
}

// NewPool wraps a lease manager in a par.Executor.
func NewPool(m *Manager, opts PoolOptions) *Pool {
	if opts.SpecFactor <= 0 {
		opts.SpecFactor = 2.0
	}
	return &Pool{m: m, opts: opts, seq: make(map[string]int)}
}

// Manager returns the pool's lease manager.
func (p *Pool) Manager() *Manager { return p.m }

// Stats snapshots the pool and manager counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Stats:      p.m.Stats(),
		Executed:   p.executed.Load(),
		Replayed:   p.replayed.Load(),
		SpecRuns:   p.specRuns.Load(),
		SpecWins:   p.specWins.Load(),
		SpecLosses: p.specLosses.Load(),
	}
}

// Summary renders the one-line end-of-run accounting commands print.
func (s PoolStats) Summary() string {
	return fmt.Sprintf("lease: %d executed (%d stolen), %d replayed, %d reclaimed, %d lost, %d conflicts, %d speculated (%d wins)",
		s.Executed, s.Stolen, s.Replayed, s.Reclaimed, s.Lost, s.Conflicts, s.SpecRuns, s.SpecWins)
}

// loopRun is the per-RunLoop shared state of the local slots.
type loopRun struct {
	loop string
	n    int
	fn   func(ctx context.Context, i int) error

	cancel context.CancelFunc

	mu sync.Mutex
	// todo holds indices not yet run locally. A slot removes an index
	// before working on it and re-adds it when the unit turns out to be
	// remote-held (or its lease was lost mid-run).
	todo map[int]bool
	// waitingSince records when an index was first found remote-held —
	// the straggler clock speculation compares against.
	waitingSince map[int]time.Time
	// durations collects completed-unit wall times (local executions and
	// remote ones via done-marker dur) for the straggler quantile.
	durations []time.Duration

	completed atomic.Int64
	failed    atomic.Pointer[error]
}

func (r *loopRun) unitID(i int) string { return fmt.Sprintf("%s/i%06d", r.loop, i) }

func (r *loopRun) fail(err error) {
	if r.failed.CompareAndSwap(nil, &err) {
		r.cancel()
	}
}

// claim removes i from todo, reporting whether this slot got it.
func (r *loopRun) claim(i int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.todo[i] {
		return false
	}
	delete(r.todo, i)
	return true
}

// requeue returns a remote-held (or fenced-off) index to todo, starting
// its straggler clock on first sight.
func (r *loopRun) requeue(i int, now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.todo[i] = true
	if _, ok := r.waitingSince[i]; !ok {
		r.waitingSince[i] = now
	}
}

func (r *loopRun) complete(i int, dur time.Duration) {
	r.mu.Lock()
	r.durations = append(r.durations, dur)
	delete(r.waitingSince, i)
	r.mu.Unlock()
	if obs.Enabled() {
		obs.Progress("lease.loop", r.completed.Add(1), int64(r.n))
	} else {
		r.completed.Add(1)
	}
}

// RunLoop implements par.Executor: fn(ctx, i) runs locally for every i
// in [0, n) — computed under a lease when this worker claims the unit,
// replayed from the shared store when a sibling completed it first.
func (p *Pool) RunLoop(ctx context.Context, name string, n int, fn func(ctx context.Context, i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	loop := p.loopID(ctx, name, n)
	sp, ctx := obs.StartSpanCtx(ctx, "lease.loop",
		obs.F("loop", loop), obs.F("n", n), obs.F("worker", p.m.Owner()))
	err := p.runLoop(ctx, loop, n, fn)
	sp.End(obs.F("err", err != nil))
	p.emitStatus()
	return err
}

// loopID derives the cluster-wide identity of this loop invocation from
// its name, size, the ambient runstate scope, and a per-identity
// sequence number. It contains no per-process state: because every
// worker executes the identical deterministic program (the shared
// store's identity file enforces matching command lines), the k-th loop
// of a given shape gets the same ID everywhere.
func (p *Pool) loopID(ctx context.Context, name string, n int) string {
	scope := runstate.ScopeFrom(ctx)
	key := fmt.Sprintf("%s|%d|%s", name, n, scope)
	p.seqMu.Lock()
	seq := p.seq[key]
	p.seq[key]++
	p.seqMu.Unlock()
	h := fnv.New64a()
	h.Write([]byte(scope))
	return fmt.Sprintf("%s~%d~%016x~%d", name, n, h.Sum64(), seq)
}

func (p *Pool) runLoop(parent context.Context, loop string, n int, fn func(ctx context.Context, i int) error) error {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	r := &loopRun{
		loop: loop, n: n, fn: fn, cancel: cancel,
		todo:         make(map[int]bool, n),
		waitingSince: make(map[int]time.Time),
	}
	for i := 0; i < n; i++ {
		r.todo[i] = true
	}

	// Keep the worker-registry entry fresh for the whole loop so idle
	// siblings keep counting this worker as live.
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(p.heartbeatEvery())
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				_ = p.m.Heartbeat()
			}
		}
	}()

	slots := p.opts.Slots
	if slots <= 0 {
		slots = runtime.GOMAXPROCS(0)
	}
	if slots > n {
		slots = n
	}
	var wg sync.WaitGroup
	for w := 0; w < slots; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					err := fmt.Errorf("lease: slot panic: %v", rec)
					r.fail(err)
				}
			}()
			// Jitter decorrelates the workers' poll cadence so reclaim
			// stampedes after a crash spread out; the seed is the worker
			// identity, so a run's timing is reproducible per worker.
			rng := rand.New(rand.NewSource(int64(ownerHash(p.m.Owner())) + int64(slot)))
			for {
				if r.failed.Load() != nil || ctx.Err() != nil {
					return
				}
				progressed, empty := p.step(ctx, r)
				if empty {
					return
				}
				if !progressed {
					d := time.Duration(float64(p.pollEvery()) * (0.5 + rng.Float64()))
					select {
					case <-ctx.Done():
					case <-time.After(d):
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(hbStop)
	hbWG.Wait()

	if errp := r.failed.Load(); errp != nil {
		return *errp
	}
	if err := parent.Err(); err != nil && r.completed.Load() < int64(n) {
		return fmt.Errorf("lease: loop %s cancelled: %w", loop, err)
	}
	return nil
}

func (p *Pool) heartbeatEvery() time.Duration {
	d := p.m.TTL() / 3
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

func (p *Pool) pollEvery() time.Duration {
	d := p.m.TTL() / 4
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// step makes one scheduling decision for a slot: replay a unit someone
// finished, claim (own/steal/reclaim) and execute a free one, or — when
// everything left is validly held elsewhere — maybe speculate on a
// straggler. It reports whether it did work, and whether the loop has
// nothing left to hand out.
func (p *Pool) step(ctx context.Context, r *loopRun) (progressed, empty bool) {
	cands := p.candidates(r)
	if cands == nil {
		return false, true
	}
	now := time.Now()
	for _, c := range cands {
		unit := r.unitID(c.i)
		if rec, done := p.m.Done(unit); done {
			if !r.claim(c.i) {
				continue
			}
			p.replay(ctx, r, c.i, rec)
			return true, false
		}
		if !r.claim(c.i) {
			continue
		}
		l, err := p.m.Acquire(unit, c.stolen)
		if errors.Is(err, ErrHeld) {
			r.requeue(c.i, now)
			continue
		}
		if err != nil {
			r.fail(err)
			return true, false
		}
		p.execute(ctx, r, c.i, l)
		return true, false
	}
	if p.opts.Speculate {
		if i, ok := p.pickStraggler(r, now); ok {
			p.speculateOn(ctx, r, i)
			return true, false
		}
	}
	return false, false
}

type candidate struct {
	i      int
	stolen bool
}

// candidates lists the slot's work, own-partition units first. The
// preferred owner of unit i is liveWorkers[i mod W] over the sorted live
// set — a deterministic striping every worker computes identically, so
// claims rarely collide while every unit always has a live preferred
// owner. Claiming outside the stripe is stealing (accounting only).
// Returns nil when the loop's todo set is empty.
func (p *Pool) candidates(r *loopRun) []candidate {
	live := p.m.LiveWorkers(3 * p.m.TTL())
	r.mu.Lock()
	idxs := make([]int, 0, len(r.todo))
	for i := range r.todo {
		idxs = append(idxs, i)
	}
	r.mu.Unlock()
	if len(idxs) == 0 {
		return nil
	}
	sort.Ints(idxs)
	own := make([]candidate, 0, len(idxs))
	var oth []candidate
	for _, i := range idxs {
		if live[i%len(live)] == p.m.Owner() {
			own = append(own, candidate{i: i})
		} else {
			oth = append(oth, candidate{i: i, stolen: true})
		}
	}
	return append(own, oth...)
}

// replay runs fn for a unit a sibling already completed. The shared
// store is refreshed first, so the unit's checkpoint lookups hit the
// sibling's journaled results and the execution is (nearly) free.
func (p *Pool) replay(ctx context.Context, r *loopRun, i int, rec Record) {
	unit := r.unitID(i)
	sp, uctx := obs.StartSpanCtx(ctx, "lease.unit",
		obs.F("unit", unit), obs.F("mode", string(ModeReplay)),
		obs.F("token", rec.Token), obs.F("worker", p.m.Owner()))
	err := runstate.Refresh()
	if err == nil {
		err = r.fn(par.WithExecutorScope(uctx), i)
	}
	sp.End(obs.F("err", err != nil))
	if err != nil {
		r.fail(err)
		return
	}
	p.replayed.Add(1)
	r.complete(i, time.Duration(rec.Dur))
}

// execute runs fn under a held lease, renewing it on a heartbeat. A
// renewal that comes back ErrLost fences the unit off: its context is
// cancelled, its claim discarded, and the index requeued — the
// successor's result will be replayed instead. Journal writes the
// zombie already made carry its stale token and lose the merge.
func (p *Pool) execute(ctx context.Context, r *loopRun, i int, l *Lease) {
	unit := r.unitID(i)
	sp, uctx := obs.StartSpanCtx(ctx, "lease.unit",
		obs.F("unit", unit), obs.F("mode", string(l.Mode)),
		obs.F("token", l.Token), obs.F("worker", p.m.Owner()))
	uctx, cancelUnit := context.WithCancel(uctx)
	defer cancelUnit()
	uctx = runstate.WithToken(par.WithExecutorScope(uctx), l.Token)

	var lost atomic.Bool
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(p.heartbeatEvery())
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-uctx.Done():
				return
			case <-t.C:
				if err := p.m.Renew(l); errors.Is(err, ErrLost) {
					lost.Store(true)
					cancelUnit()
					return
				}
			}
		}
	}()

	start := time.Now()
	err := r.fn(uctx, i)
	close(hbStop)
	hbWG.Wait()
	dur := time.Since(start)

	if err != nil && lost.Load() && ctx.Err() == nil {
		// Fenced off mid-unit: not a failure, just a lost race with our
		// own presumed death. The successor finishes the unit.
		sp.End(obs.F("lost", true))
		r.requeue(i, time.Now())
		return
	}
	if err != nil {
		// A permanent unit failure (retries already spent inside fn). The
		// done marker carries the error so siblings stop waiting for a
		// success that deterministically cannot come.
		_, _ = p.m.MarkDone(unit, l.Token, dur, err)
		p.m.Release(l)
		sp.End(obs.F("err", true))
		r.fail(err)
		return
	}
	_, derr := p.m.MarkDone(unit, l.Token, dur, nil)
	p.m.Release(l)
	sp.End(obs.F("err", derr != nil), obs.F("dur_ms", float64(dur)/float64(time.Millisecond)))
	if derr != nil {
		r.fail(derr)
		return
	}
	p.executed.Add(1)
	r.complete(i, dur)
}

// pickStraggler finds a remote-held unit this worker has watched for
// longer than SpecFactor × the p95 of completed-unit durations. Needs at
// least 3 completed siblings for the quantile to mean anything.
func (p *Pool) pickStraggler(r *loopRun, now time.Time) (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.durations) < 3 {
		return 0, false
	}
	ds := make([]time.Duration, len(r.durations))
	copy(ds, r.durations)
	sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
	p95 := ds[(len(ds)*95)/100]
	threshold := time.Duration(p.opts.SpecFactor * float64(p95))
	idxs := make([]int, 0, len(r.todo))
	for i := range r.todo {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		if ws, ok := r.waitingSince[i]; ok && now.Sub(ws) > threshold {
			delete(r.todo, i) // claim for speculation
			return i, true
		}
	}
	return 0, false
}

// speculateOn duplicates a straggling unit without taking its lease,
// under a fresh (necessarily higher) fencing token. First completion
// wins the done marker; determinism makes the duplicate byte-identical,
// so losing costs nothing but the cycles.
func (p *Pool) speculateOn(ctx context.Context, r *loopRun, i int) {
	unit := r.unitID(i)
	tok, err := p.m.AllocToken()
	if err != nil {
		r.fail(err)
		return
	}
	p.specRuns.Add(1)
	sp, uctx := obs.StartSpanCtx(ctx, "lease.unit",
		obs.F("unit", unit), obs.F("mode", string(ModeSpeculate)),
		obs.F("token", tok), obs.F("worker", p.m.Owner()))
	uctx = runstate.WithToken(par.WithExecutorScope(uctx), tok)
	start := time.Now()
	err = r.fn(uctx, i)
	dur := time.Since(start)
	if err != nil {
		sp.End(obs.F("err", true))
		r.fail(err)
		return
	}
	won, derr := p.m.MarkDone(unit, tok, dur, nil)
	sp.End(obs.F("err", derr != nil), obs.F("won", won))
	if derr != nil {
		r.fail(derr)
		return
	}
	if won {
		p.specWins.Add(1)
	} else {
		p.specLosses.Add(1)
	}
	if obs.Enabled() {
		obs.Event("lease.speculate", obs.F("unit", unit),
			obs.F("token", tok), obs.F("won", won),
			obs.F("dur_ms", float64(dur)/float64(time.Millisecond)))
	}
	p.executed.Add(1)
	r.complete(i, dur)
}

// emitStatus publishes the pool counters as a lease.status event; the
// telemetry registry lifts its numeric fields into the
// commsched_lease_* gauge family at /metrics.
func (p *Pool) emitStatus() {
	if !obs.Enabled() {
		return
	}
	s := p.Stats()
	obs.Event("lease.status",
		obs.F("worker", p.m.Owner()),
		obs.F("acquired", s.Acquired),
		obs.F("stolen", s.Stolen),
		obs.F("reclaimed", s.Reclaimed),
		obs.F("lost", s.Lost),
		obs.F("conflicts", s.Conflicts),
		obs.F("expired", s.Expired),
		obs.F("renewals", s.Renewals),
		obs.F("executed", s.Executed),
		obs.F("replayed", s.Replayed),
		obs.F("spec_runs", s.SpecRuns),
		obs.F("spec_wins", s.SpecWins),
		obs.F("spec_losses", s.SpecLosses))
}

func ownerHash(owner string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(owner))
	return h.Sum64()
}
