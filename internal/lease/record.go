// Package lease is the coordination layer of distributed execution:
// multiple worker processes sharing one checkpoint directory claim units
// of work through filesystem leases, so a sweep fans out across
// processes (and machines sharing a filesystem) while any worker can be
// SIGKILLed at any instant without changing the merged result.
//
// The protocol is built from three primitives, all plain files under
// <dir>/lease/:
//
//	units/<unit>.lease — the current lease on a unit. A fresh unit is
//	    claimed by O_EXCL creation (exactly one winner); an expired
//	    lease is taken over by atomic rename with a freshly allocated
//	    fencing token, and the rename winner is decided by read-back.
//	tokens/t<n>       — the fencing-token allocator: creating t<n> with
//	    O_EXCL allocates token n, so tokens are globally unique and
//	    monotonically increasing across all workers.
//	done/<unit>.done  — completion markers, created with O_EXCL after
//	    the unit's result is durably journaled: the first valid
//	    completion wins, later duplicates (speculation, zombies) detect
//	    the loss and stand down.
//
// Fencing makes zombies harmless: every result is journaled under the
// fencing token it was computed with, and the journal merge keeps the
// highest token per unit (counting conflicts). Because every unit in
// this module is a deterministic pure function of its key, duplicated
// executions produce byte-identical payloads — the merge asserts this,
// so speculation and lease takeovers are observable in counters but can
// never change the output.
package lease

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// WireVersion is the lease/done record format version; records written
// by an incompatible version fail to parse and are treated as torn.
const WireVersion = 1

// magic is the leading field of every record line.
var magic = fmt.Sprintf("lease/%d", WireVersion)

// Record is one parsed lease or done-marker line. Owner and Unit are
// free-form strings (quoted on the wire); Expires and Dur are
// nanosecond timestamps/durations.
type Record struct {
	// Token is the fencing token the holder allocated for this claim.
	Token uint64
	// Owner is the worker ID that wrote the record.
	Owner string
	// Unit names the work unit the record is about.
	Unit string
	// Expires is the lease deadline as Unix nanoseconds. Done markers
	// carry the completion time here.
	Expires int64
	// Dur is the unit's execution wall time in nanoseconds (done markers
	// only; 0 on leases).
	Dur int64
	// Err is the unit's permanent failure, "" for success (done markers
	// only).
	Err string
}

// ErrBadRecord reports an unparsable lease/done record — a torn write or
// an alien file. Torn records are treated as expired leases (safe to
// reclaim), never trusted.
var ErrBadRecord = errors.New("lease: malformed record")

// String renders the record in the wire format, newline-terminated:
//
//	lease/1 token=7 owner="w1" unit="simnet.sweep~9~a1b2c3d4~0.3" expires=171234 dur=42 err="boom"
//
// dur and err are omitted when zero. Format and Parse round-trip
// exactly; the fuzz target asserts it.
func (r Record) String() string {
	var b strings.Builder
	b.WriteString(magic)
	fmt.Fprintf(&b, " token=%d owner=%s unit=%s expires=%d",
		r.Token, strconv.Quote(r.Owner), strconv.Quote(r.Unit), r.Expires)
	if r.Dur != 0 {
		fmt.Fprintf(&b, " dur=%d", r.Dur)
	}
	if r.Err != "" {
		fmt.Fprintf(&b, " err=%s", strconv.Quote(r.Err))
	}
	b.WriteByte('\n')
	return b.String()
}

// Parse decodes one record line. The trailing newline is the record
// terminator and is required: a torn write (crash mid-append) is missing
// it, so no strict prefix of a valid record ever parses — not even one
// that truncates an unquoted numeric field to a shorter valid number.
// Unknown keys are rejected and required keys (token, owner, unit,
// expires) must all be present exactly once.
func Parse(data []byte) (Record, error) {
	s, terminated := strings.CutSuffix(string(data), "\n")
	if !terminated {
		return Record{}, fmt.Errorf("%w: missing record terminator (torn write)", ErrBadRecord)
	}
	if strings.ContainsAny(s, "\n\r") {
		return Record{}, fmt.Errorf("%w: embedded newline", ErrBadRecord)
	}
	rest, ok := strings.CutPrefix(s, magic)
	if !ok {
		return Record{}, fmt.Errorf("%w: missing %q header", ErrBadRecord, magic)
	}
	var r Record
	seen := map[string]bool{}
	for rest != "" {
		if rest[0] != ' ' {
			return Record{}, fmt.Errorf("%w: expected space before %q", ErrBadRecord, rest)
		}
		rest = rest[1:]
		eq := strings.IndexByte(rest, '=')
		if eq <= 0 {
			return Record{}, fmt.Errorf("%w: expected key=value at %q", ErrBadRecord, rest)
		}
		key := rest[:eq]
		rest = rest[eq+1:]
		if seen[key] {
			return Record{}, fmt.Errorf("%w: duplicate key %q", ErrBadRecord, key)
		}
		seen[key] = true
		var val string
		if strings.HasPrefix(rest, `"`) {
			quoted, err := strconv.QuotedPrefix(rest)
			if err != nil {
				return Record{}, fmt.Errorf("%w: unterminated quote in %q", ErrBadRecord, key)
			}
			val, err = strconv.Unquote(quoted)
			if err != nil {
				return Record{}, fmt.Errorf("%w: bad quoting in %q", ErrBadRecord, key)
			}
			rest = rest[len(quoted):]
		} else {
			end := strings.IndexByte(rest, ' ')
			if end < 0 {
				end = len(rest)
			}
			val, rest = rest[:end], rest[end:]
		}
		switch key {
		case "token":
			tok, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Record{}, fmt.Errorf("%w: token %q", ErrBadRecord, val)
			}
			r.Token = tok
		case "owner":
			r.Owner = val
		case "unit":
			r.Unit = val
		case "expires":
			ns, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Record{}, fmt.Errorf("%w: expires %q", ErrBadRecord, val)
			}
			r.Expires = ns
		case "dur":
			ns, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Record{}, fmt.Errorf("%w: dur %q", ErrBadRecord, val)
			}
			r.Dur = ns
		case "err":
			r.Err = val
		default:
			return Record{}, fmt.Errorf("%w: unknown key %q", ErrBadRecord, key)
		}
	}
	for _, req := range []string{"token", "owner", "unit", "expires"} {
		if !seen[req] {
			return Record{}, fmt.Errorf("%w: missing %q", ErrBadRecord, req)
		}
	}
	// The zero token is reserved for non-distributed (tokenless) journal
	// records; a lease claiming it could never win a merge.
	if r.Token == 0 {
		return Record{}, fmt.Errorf("%w: token 0 is reserved", ErrBadRecord)
	}
	return r, nil
}
