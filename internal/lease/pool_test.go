package lease

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"commsched/internal/runstate"
)

// testValue is the deterministic payload of unit i: every execution —
// original, reclaim, steal, or speculation — must journal these bytes.
func testValue(i int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "unit-%d", i)
	return h.Sum64()
}

func testIdentity() runstate.Identity {
	return runstate.Identity{Command: "lease-test", Seeds: map[string]int64{"s": 1}}
}

// TestPoolContentionProperty is the lease-contention property test: N
// in-process "workers" (each with its own store, manager, and pool)
// race over M units on one shared directory, on top of leases abandoned
// by a crashed worker (forced expiries) and stale journal records under
// the crashed worker's fencing tokens (forced merge conflicts). The
// properties:
//
//   - every worker materializes the full, byte-identical result set;
//   - the merged journal holds every unit exactly once, under the
//     highest token that wrote it, with zero determinism violations;
//   - exactly one done marker per unit;
//   - the abandoned leases were reclaimed, and no fencing token ever
//     regressed (the winner of each unit is that unit's max token).
func TestPoolContentionProperty(t *testing.T) {
	const (
		workers = 4
		units   = 32
	)
	dir := t.TempDir()

	// A "crashed" worker: claims a handful of units with an already-tiny
	// TTL, journals two of them under its (low) tokens, then vanishes
	// without done markers or releases.
	dead := openTestManager(t, dir, "dead", time.Millisecond)
	for _, u := range []int{0, 3, 7} {
		if _, err := dead.Acquire(fmt.Sprintf("loop/i%06d", u), false); err != nil {
			t.Fatalf("dead acquire: %v", err)
		}
	}
	deadStore, err := runstate.OpenWorker(dir, testIdentity(), "dead")
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []int{0, 3} {
		deadStore.RecordToken(fmt.Sprintf("unit/%d", u), testValue(u), 1)
	}
	if err := deadStore.Close(); err != nil {
		t.Fatal(err)
	}

	type workerOut struct {
		results []uint64
		stats   PoolStats
		store   *runstate.Store
	}
	outs := make([]workerOut, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("w%d", w)
			st, err := runstate.OpenWorker(dir, testIdentity(), id)
			if err != nil {
				t.Errorf("%s: OpenWorker: %v", id, err)
				return
			}
			m, err := Open(dir, id, 50*time.Millisecond)
			if err != nil {
				t.Errorf("%s: Open: %v", id, err)
				return
			}
			pool := NewPool(m, PoolOptions{Slots: 2})
			results := make([]uint64, units)
			err = pool.runLoop(context.Background(), "loop", units, func(ctx context.Context, i int) error {
				key := fmt.Sprintf("unit/%d", i)
				if err := st.Refresh(); err != nil {
					return err
				}
				var v uint64
				if st.Lookup(key, &v) {
					results[i] = v
					return nil
				}
				time.Sleep(time.Millisecond) // the unit's "work"
				v = testValue(i)
				st.RecordToken(key, v, runstate.TokenFrom(ctx))
				results[i] = v
				return nil
			})
			if err != nil {
				t.Errorf("%s: runLoop: %v", id, err)
				return
			}
			outs[w] = workerOut{results: results, stats: pool.Stats(), store: st}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Property 1: every worker's materialized results equal the serial
	// computation, byte for byte.
	var serial []uint64
	for i := 0; i < units; i++ {
		serial = append(serial, testValue(i))
	}
	want, _ := json.Marshal(serial)
	for w, out := range outs {
		got, _ := json.Marshal(out.results)
		if string(got) != string(want) {
			t.Errorf("w%d results diverge from serial:\n got %s\nwant %s", w, got, want)
		}
	}

	// Property 2: each store's merged view holds every unit exactly once
	// with zero determinism violations, and the crashed worker's leases
	// were reclaimed by someone.
	var totalReclaimed, totalExecuted int64
	for w, out := range outs {
		if err := out.store.Refresh(); err != nil {
			t.Fatalf("w%d final refresh: %v", w, err)
		}
		for i := 0; i < units; i++ {
			var v uint64
			if !out.store.Lookup(fmt.Sprintf("unit/%d", i), &v) {
				t.Errorf("w%d merged view is missing unit/%d", w, i)
			} else if v != testValue(i) {
				t.Errorf("w%d unit/%d = %d, want %d", w, i, v, testValue(i))
			}
		}
		if dv := out.store.Stats().DeterminismViolations; dv != 0 {
			t.Errorf("w%d observed %d determinism violation(s)", w, dv)
		}
		totalReclaimed += out.stats.Reclaimed
		totalExecuted += out.stats.Executed
		out.store.Close()
	}
	if totalReclaimed < 3 {
		t.Errorf("reclaimed %d leases in total, want the 3 abandoned ones", totalReclaimed)
	}
	if totalExecuted < int64(units) {
		t.Errorf("executed %d units in total, want >= %d", totalExecuted, units)
	}

	// Property 3: exactly one done marker per unit, and the winner of
	// each unit in the merged journal is that unit's highest token (no
	// fencing regression).
	markers, err := os.ReadDir(filepath.Join(dir, "lease", "done"))
	if err != nil {
		t.Fatal(err)
	}
	if len(markers) != units {
		t.Errorf("%d done markers, want %d", len(markers), units)
	}
	maxToken := map[string]uint64{}
	journals, _ := filepath.Glob(filepath.Join(dir, "journal-*.jsonl"))
	if len(journals) < workers {
		t.Fatalf("found %d journals, want >= %d", len(journals), workers)
	}
	for _, j := range journals {
		f, err := os.Open(j)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			var line struct {
				Key   string `json:"key"`
				Token uint64 `json:"token"`
			}
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				t.Fatalf("%s: unparsable journal line %q", j, sc.Text())
			}
			if line.Token > maxToken[line.Key] {
				maxToken[line.Key] = line.Token
			}
		}
		f.Close()
	}
	audit, err := runstate.OpenWorker(dir, testIdentity(), "audit")
	if err != nil {
		t.Fatal(err)
	}
	defer audit.Close()
	for i := 0; i < units; i++ {
		key := fmt.Sprintf("unit/%d", i)
		if _, ok := maxToken[key]; !ok {
			t.Errorf("%s absent from every journal", key)
		}
		var v uint64
		if !audit.Lookup(key, &v) || v != testValue(i) {
			t.Errorf("audit store: %s = %d, want %d", key, v, testValue(i))
		}
	}
	if audit.Stats().DeterminismViolations != 0 {
		t.Errorf("audit observed determinism violations")
	}
}

// TestPoolSpeculationDuplicatesStragglers pins the straggler policy: a
// fast worker that has drained everything else duplicates the slow
// worker's in-flight unit under a fresh token, and the first completion
// wins without changing any result.
func TestPoolSpeculationDuplicatesStragglers(t *testing.T) {
	const units = 8
	dir := t.TempDir()
	run := func(id string, unitSleep time.Duration, opts PoolOptions, results []uint64, stats *PoolStats, done chan<- error) {
		st, err := runstate.OpenWorker(dir, testIdentity(), id)
		if err != nil {
			done <- err
			return
		}
		defer st.Close()
		m, err := Open(dir, id, 100*time.Millisecond)
		if err != nil {
			done <- err
			return
		}
		pool := NewPool(m, opts)
		err = pool.runLoop(context.Background(), "loop", units, func(ctx context.Context, i int) error {
			key := fmt.Sprintf("unit/%d", i)
			if err := st.Refresh(); err != nil {
				return err
			}
			var v uint64
			if st.Lookup(key, &v) {
				results[i] = v
				return nil
			}
			time.Sleep(unitSleep)
			v = testValue(i)
			st.RecordToken(key, v, runstate.TokenFrom(ctx))
			results[i] = v
			return nil
		})
		*stats = pool.Stats()
		done <- err
	}

	slowRes := make([]uint64, units)
	fastRes := make([]uint64, units)
	var slowStats, fastStats PoolStats
	slowDone := make(chan error, 1)
	fastDone := make(chan error, 1)
	go run("slow", 2*time.Second, PoolOptions{Slots: 1}, slowRes, &slowStats, slowDone)
	time.Sleep(20 * time.Millisecond) // let slow claim its first unit
	go run("fast", time.Millisecond, PoolOptions{Speculate: true, SpecFactor: 2, Slots: 2}, fastRes, &fastStats, fastDone)

	if err := <-fastDone; err != nil {
		t.Fatalf("fast worker: %v", err)
	}
	if fastStats.SpecRuns == 0 {
		t.Errorf("fast worker never speculated; stats %+v", fastStats)
	}
	if err := <-slowDone; err != nil {
		t.Fatalf("slow worker: %v", err)
	}
	for i := 0; i < units; i++ {
		if fastRes[i] != testValue(i) || slowRes[i] != testValue(i) {
			t.Fatalf("unit %d: fast=%d slow=%d want %d", i, fastRes[i], slowRes[i], testValue(i))
		}
	}
}

// TestPoolLoopIDsAgreeAcrossWorkers pins the distribution contract: two
// pools that run the same program derive identical loop IDs, including
// the sequence number that separates repeated loops of the same shape.
func TestPoolLoopIDsAgreeAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	a := NewPool(openTestManager(t, dir, "a", time.Minute), PoolOptions{})
	b := NewPool(openTestManager(t, dir, "b", time.Minute), PoolOptions{})
	ctx := runstate.WithScope(context.Background(), "sys=abc/map=def")
	for k := 0; k < 3; k++ {
		la := a.loopID(ctx, "par.foreach", 18)
		lb := b.loopID(ctx, "par.foreach", 18)
		if la != lb {
			t.Fatalf("iteration %d: loop IDs diverge: %q vs %q", k, la, lb)
		}
		if !strings.Contains(la, fmt.Sprintf("~%d", k)) {
			t.Fatalf("loop ID %q missing sequence %d", la, k)
		}
	}
	// A different scope or size is a different loop.
	if a.loopID(runstate.WithScope(context.Background(), "other"), "par.foreach", 18) ==
		b.loopID(ctx, "par.foreach", 18) {
		t.Fatal("distinct scopes produced the same loop ID")
	}
}
