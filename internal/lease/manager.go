package lease

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"commsched/internal/obs"
)

// Mode classifies how a lease (or execution) was obtained; it labels the
// lease.unit spans and feeds the steal/reclaim counters.
type Mode string

const (
	// ModeOwned is a fresh claim of a unit in the worker's preferred
	// partition.
	ModeOwned Mode = "owned"
	// ModeSteal is a fresh claim of a unit preferred by another live
	// worker (work stealing: the thief ran out of its own units).
	ModeSteal Mode = "steal"
	// ModeReclaim is a takeover of an expired (or torn) lease — the
	// previous holder crashed or stalled past the TTL.
	ModeReclaim Mode = "reclaim"
	// ModeReplay is a local execution of a unit another worker already
	// completed (cheap: the unit's results replay from the shared store).
	ModeReplay Mode = "replay"
	// ModeSpeculate is a duplicate execution of a straggling unit, run
	// without holding its lease under a fresh (higher) fencing token.
	ModeSpeculate Mode = "speculate"
)

// ErrHeld reports that a unit's lease is currently held (and not
// expired) by another worker.
var ErrHeld = fmt.Errorf("lease: unit is held by another worker")

// ErrLost reports that this worker's lease was taken over (a higher
// fencing token now owns the unit) — the worker was presumed dead and
// must stop treating the unit as its own.
var ErrLost = fmt.Errorf("lease: lease lost to a higher fencing token")

// Lease is one held claim on a unit.
type Lease struct {
	// Unit is the claimed unit ID.
	Unit string
	// Token is the fencing token this claim was allocated.
	Token uint64
	// Expires is the current deadline (advanced by Renew).
	Expires time.Time
	// Mode records how the claim was obtained (owned/steal/reclaim).
	Mode Mode
}

// Stats are the manager's lifetime counters, one field per protocol
// event worth alerting on.
type Stats struct {
	// Acquired counts successful fresh claims (owned + stolen).
	Acquired int64 `json:"acquired"`
	// Stolen counts fresh claims of units preferred by another live
	// worker.
	Stolen int64 `json:"stolen"`
	// Reclaimed counts takeovers of expired leases.
	Reclaimed int64 `json:"reclaimed"`
	// Lost counts this worker's leases taken over by someone else.
	Lost int64 `json:"lost"`
	// Conflicts counts lost acquisition/takeover races (another worker
	// won the O_EXCL create or the rename read-back).
	Conflicts int64 `json:"conflicts"`
	// Expired counts leases observed past their deadline (candidates for
	// reclaim).
	Expired int64 `json:"expired"`
	// Renewals counts successful heartbeat renewals.
	Renewals int64 `json:"renewals"`
}

// Manager coordinates one worker's leases under <base>/lease. All
// methods are safe for concurrent use by the pool's local workers.
type Manager struct {
	dir   string // <base>/lease
	owner string
	ttl   time.Duration

	// now is the clock, swappable in tests to force expiries.
	now func() time.Time

	tokenHint atomic.Uint64

	statsMu sync.Mutex
	stats   Stats
	// reclaimLatencies records, for every takeover this worker performed,
	// how long past its deadline the dead lease sat before the reclaim
	// landed — the "how fast does the cluster heal" metric.
	reclaimLatencies []time.Duration
}

// Open prepares the lease directory under base and registers the worker
// in the registry. TTL must comfortably exceed the heartbeat interval
// the pool will use (the pool renews at TTL/3).
func Open(base, owner string, ttl time.Duration) (*Manager, error) {
	if owner == "" {
		return nil, fmt.Errorf("lease: empty worker ID")
	}
	if strings.ContainsAny(owner, "/\x00") {
		return nil, fmt.Errorf("lease: worker ID %q must not contain '/'", owner)
	}
	if ttl <= 0 {
		ttl = 5 * time.Second
	}
	dir := filepath.Join(base, "lease")
	for _, sub := range []string{"units", "tokens", "done", "workers"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("lease: creating %s: %w", sub, err)
		}
	}
	m := &Manager{dir: dir, owner: owner, ttl: ttl, now: time.Now}
	m.tokenHint.Store(m.scanMaxToken())
	if err := m.Heartbeat(); err != nil {
		return nil, err
	}
	return m, nil
}

// Owner returns the worker ID this manager claims leases as.
func (m *Manager) Owner() string { return m.owner }

// TTL returns the lease time-to-live.
func (m *Manager) TTL() time.Duration { return m.ttl }

func (m *Manager) unitPath(unit string) string {
	return filepath.Join(m.dir, "units", sanitize(unit)+".lease")
}

func (m *Manager) donePath(unit string) string {
	return filepath.Join(m.dir, "done", sanitize(unit)+".done")
}

// sanitize makes a unit ID filesystem-safe: path separators (and the
// few other bytes that are risky in file names) are percent-escaped.
// Distinct unit IDs stay distinct.
func sanitize(unit string) string {
	var b strings.Builder
	for i := 0; i < len(unit); i++ {
		c := unit[i]
		switch {
		case c == '/' || c == '\\' || c == '%' || c == 0 || c == '\n':
			fmt.Fprintf(&b, "%%%02x", c)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// ---- fencing tokens ----

// AllocToken allocates the next globally unique, monotonically
// increasing fencing token by creating tokens/t<n> with O_EXCL. Lost
// races bump n and retry, so concurrent allocations across workers never
// collide and never go backwards.
func (m *Manager) AllocToken() (uint64, error) {
	for {
		next := m.tokenHint.Load() + 1
		path := filepath.Join(m.dir, "tokens", fmt.Sprintf("t%020d", next))
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			_, werr := f.WriteString(m.owner + "\n")
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return 0, fmt.Errorf("lease: writing token file: %w", werr)
			}
			m.raiseHint(next)
			return next, nil
		}
		if !os.IsExist(err) {
			return 0, fmt.Errorf("lease: allocating token %d: %w", next, err)
		}
		// Someone else holds this number; our view is stale. Re-scan so a
		// long-asleep worker jumps straight past the contention instead of
		// walking it one number at a time.
		if scanned := m.scanMaxToken(); scanned > next {
			m.raiseHint(scanned)
		} else {
			m.raiseHint(next)
		}
	}
}

func (m *Manager) raiseHint(v uint64) {
	for {
		cur := m.tokenHint.Load()
		if cur >= v || m.tokenHint.CompareAndSwap(cur, v) {
			return
		}
	}
}

// scanMaxToken returns the highest allocated token on disk (0 when none).
func (m *Manager) scanMaxToken() uint64 {
	entries, err := os.ReadDir(filepath.Join(m.dir, "tokens"))
	if err != nil {
		return 0
	}
	var max uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "t") {
			continue
		}
		if v, err := strconv.ParseUint(strings.TrimLeft(name[1:], "0"), 10, 64); err == nil && v > max {
			max = v
		} else if name == "t"+strings.Repeat("0", 20) {
			continue
		}
	}
	return max
}

// ---- lease lifecycle ----

// Holder returns the unit's current lease record. held reports whether a
// parsable, unexpired lease exists; expired is true when a lease file
// exists but is past its deadline or torn (safe to reclaim).
func (m *Manager) Holder(unit string) (rec Record, held, expired bool) {
	data, err := os.ReadFile(m.unitPath(unit))
	if err != nil {
		return Record{}, false, false
	}
	rec, perr := Parse(data)
	if perr != nil {
		// A torn lease write: the claimer crashed between create and
		// write. There is no deadline to honor, so it is reclaimable now.
		return Record{}, false, true
	}
	if m.now().UnixNano() >= rec.Expires {
		m.count(func(s *Stats) { s.Expired++ })
		return rec, false, true
	}
	return rec, true, false
}

// Acquire claims the unit: a fresh O_EXCL creation when no lease file
// exists, or an atomic-rename takeover when the existing lease is
// expired or torn. stolen tags fresh claims the pool considers outside
// this worker's preferred partition (accounting only). It returns
// ErrHeld when the unit is validly leased by someone else or when a
// concurrent claim wins the race.
func (m *Manager) Acquire(unit string, stolen bool) (*Lease, error) {
	prev, held, expired := m.Holder(unit)
	if held {
		return nil, ErrHeld
	}
	tok, err := m.AllocToken()
	if err != nil {
		return nil, err
	}
	now := m.now()
	rec := Record{Token: tok, Owner: m.owner, Unit: unit, Expires: now.Add(m.ttl).UnixNano()}
	path := m.unitPath(unit)
	if !expired {
		// Fresh unit: O_EXCL decides the winner outright.
		f, cerr := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if cerr != nil {
			if os.IsExist(cerr) {
				m.count(func(s *Stats) { s.Conflicts++ })
				return nil, ErrHeld
			}
			return nil, fmt.Errorf("lease: claiming %s: %w", unit, cerr)
		}
		_, werr := f.WriteString(rec.String())
		if serr := f.Sync(); werr == nil {
			werr = serr
		}
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return nil, fmt.Errorf("lease: writing lease for %s: %w", unit, werr)
		}
	} else {
		// Takeover of an expired/torn lease: write-then-rename is atomic,
		// but two reclaimers can rename back to back — the read-back
		// decides who actually holds the unit now.
		if err := m.writeRename(path, rec); err != nil {
			return nil, err
		}
	}
	// Read-back verification closes every race: a concurrent takeover
	// that renamed after us leaves a different token in the file, and the
	// holder of the file's token is the holder of the unit.
	cur, curHeld, _ := m.Holder(unit)
	if !curHeld || cur.Token != tok {
		m.count(func(s *Stats) { s.Conflicts++ })
		return nil, ErrHeld
	}
	mode := ModeOwned
	switch {
	case expired:
		mode = ModeReclaim
		lat := now.Sub(time.Unix(0, prev.Expires))
		if prev.Expires == 0 { // torn lease: no deadline to measure from
			lat = 0
		}
		m.count(func(s *Stats) {
			s.Reclaimed++
			m.reclaimLatencies = append(m.reclaimLatencies, lat)
		})
		if obs.Enabled() {
			obs.Event("lease.reclaim",
				obs.F("unit", unit), obs.F("token", tok),
				obs.F("prev_owner", prev.Owner), obs.F("prev_token", prev.Token),
				obs.F("latency_ms", float64(lat)/float64(time.Millisecond)))
		}
	case stolen:
		mode = ModeSteal
		m.count(func(s *Stats) { s.Acquired++; s.Stolen++ })
	default:
		m.count(func(s *Stats) { s.Acquired++ })
	}
	return &Lease{Unit: unit, Token: tok, Expires: time.Unix(0, rec.Expires), Mode: mode}, nil
}

// Renew extends a held lease by one TTL. It returns ErrLost when the
// lease file no longer carries this lease's token — the worker was
// presumed dead and taken over; the caller must fence itself off (stop
// the unit, discard the claim).
func (m *Manager) Renew(l *Lease) error {
	cur, held, _ := m.Holder(l.Unit)
	if !held || cur.Token != l.Token {
		m.count(func(s *Stats) { s.Lost++ })
		return ErrLost
	}
	rec := cur
	rec.Expires = m.now().Add(m.ttl).UnixNano()
	if err := m.writeRename(m.unitPath(l.Unit), rec); err != nil {
		return err
	}
	// The rename could have raced a takeover; only the read-back tells.
	cur, held, _ = m.Holder(l.Unit)
	if !held || cur.Token != l.Token {
		m.count(func(s *Stats) { s.Lost++ })
		return ErrLost
	}
	l.Expires = time.Unix(0, rec.Expires)
	m.count(func(s *Stats) { s.Renewals++ })
	return nil
}

// Release drops a held lease. Releasing a lease that was already taken
// over is a no-op (the file now belongs to the successor).
func (m *Manager) Release(l *Lease) {
	cur, _, _ := m.Holder(l.Unit)
	if cur.Token != l.Token {
		return
	}
	// Benign race: between the check and the remove a takeover could slip
	// in, deleting the successor's lease file. The unit then merely looks
	// free — its done marker and fenced journal still guarantee
	// exactly-once results, so the cost is a wasted duplicate execution.
	os.Remove(m.unitPath(l.Unit))
}

// ---- completion markers ----

// MarkDone publishes the unit's completion under the given token: an
// O_EXCL creation, so the first valid completion wins and every later
// duplicate (speculation, zombie) learns it lost. dur is the execution
// wall time; unitErr, when non-nil, marks a deterministic permanent
// failure so sibling workers stop waiting for a success that cannot come.
func (m *Manager) MarkDone(unit string, token uint64, dur time.Duration, unitErr error) (won bool, err error) {
	rec := Record{Token: token, Owner: m.owner, Unit: unit,
		Expires: m.now().UnixNano(), Dur: int64(dur)}
	if unitErr != nil {
		rec.Err = unitErr.Error()
	}
	f, cerr := os.OpenFile(m.donePath(unit), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if cerr != nil {
		if os.IsExist(cerr) {
			return false, nil
		}
		return false, fmt.Errorf("lease: marking %s done: %w", unit, cerr)
	}
	_, werr := f.WriteString(rec.String())
	if serr := f.Sync(); werr == nil {
		werr = serr
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return false, fmt.Errorf("lease: writing done marker for %s: %w", unit, werr)
	}
	return true, nil
}

// Done reports whether the unit has a completion marker, returning it.
// A torn marker (crash mid-write) reads as not-done; the marker is
// rewritten by whoever completes the unit next.
func (m *Manager) Done(unit string) (Record, bool) {
	data, err := os.ReadFile(m.donePath(unit))
	if err != nil {
		return Record{}, false
	}
	rec, perr := Parse(data)
	if perr != nil {
		// Torn done marker: remove it so a future completion can O_EXCL a
		// fresh one; the result journal is the source of truth anyway.
		os.Remove(m.donePath(unit))
		return Record{}, false
	}
	return rec, true
}

// ---- worker registry ----

// workerInfo is the registry entry workers heartbeat into
// lease/workers/<id>.json; liveness is judged by file mtime.
type workerInfo struct {
	PID     int   `json:"pid"`
	Started int64 `json:"started_unix_ns"`
}

// Heartbeat refreshes this worker's registry entry; the pool calls it on
// its lease-renewal cadence.
func (m *Manager) Heartbeat() error {
	path := filepath.Join(m.dir, "workers", m.owner+".json")
	data, err := json.Marshal(workerInfo{PID: os.Getpid(), Started: m.now().UnixNano()})
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("lease: worker heartbeat: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("lease: worker heartbeat: %w", err)
	}
	return nil
}

// LiveWorkers returns the sorted IDs of workers whose registry entry was
// refreshed within the window. The caller's own ID is always included
// (its own heartbeat might be due).
func (m *Manager) LiveWorkers(window time.Duration) []string {
	cutoff := m.now().Add(-window)
	entries, err := os.ReadDir(filepath.Join(m.dir, "workers"))
	live := map[string]bool{m.owner: true}
	if err == nil {
		for _, e := range entries {
			name, ok := strings.CutSuffix(e.Name(), ".json")
			if !ok {
				continue
			}
			if info, err := e.Info(); err == nil && info.ModTime().After(cutoff) {
				live[name] = true
			}
		}
	}
	out := make([]string, 0, len(live))
	for id := range live {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// ---- helpers ----

// writeRename publishes rec at path via tmp file + fsync + rename. The
// tmp name embeds the owner and token so concurrent writers never tread
// on each other's temp files.
func (m *Manager) writeRename(path string, rec Record) error {
	tmp := fmt.Sprintf("%s.%s.%d.tmp", path, sanitize(rec.Owner), rec.Token)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("lease: temp lease file: %w", err)
	}
	_, werr := f.WriteString(rec.String())
	if serr := f.Sync(); werr == nil {
		werr = serr
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("lease: writing %s: %w", tmp, werr)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("lease: publishing lease: %w", err)
	}
	return nil
}

func (m *Manager) count(fn func(*Stats)) {
	m.statsMu.Lock()
	fn(&m.stats)
	m.statsMu.Unlock()
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	return m.stats
}

// ReclaimLatencies returns the takeover latencies this worker measured:
// for each reclaim, how long past its deadline the dead lease sat before
// this worker took it over.
func (m *Manager) ReclaimLatencies() []time.Duration {
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	out := make([]time.Duration, len(m.reclaimLatencies))
	copy(out, m.reclaimLatencies)
	return out
}
