// Package repro_bench regenerates every table and figure of the paper's
// evaluation as Go benchmarks. Each benchmark both *times* the experiment
// and *reports* the paper's quantities as custom benchmark metrics
// (b.ReportMetric), so `go test -bench=. -benchmem` reproduces the
// evaluation in one run:
//
//	BenchmarkFig1TabuTrace        — Figure 1 (Tabu trajectory)
//	BenchmarkFig2Partition16      — Figure 2 (16-switch partition, Cc)
//	BenchmarkFig3Sim16            — Figure 3 (16-switch curves, throughput gain)
//	BenchmarkFig4Partition24      — Figure 4 (rings identified)
//	BenchmarkFig5Sim24            — Figure 5 (24-switch curves, throughput gain)
//	BenchmarkFig6Correlation      — Figure 6 (Cc/performance correlation)
//	BenchmarkClaimTabuVsExhaustive— optimality on small networks
//	BenchmarkClaimHeuristics      — Tabu vs costlier heuristics
//	BenchmarkClaimMultiNetCorrelation — >70% correlation across networks
//	BenchmarkAblation*            — design-choice ablations (DESIGN.md §5)
//	BenchmarkExtension*           — the paper's future-work features
//	BenchmarkMetaTaskHeuristics   — the background's computational side
//
// The simulation scale is reduced from the paper's full windows so the
// whole suite runs in minutes; cmd/paperfigs regenerates the full-scale
// tables.
package main

import (
	"math/rand"
	"testing"

	"commsched/internal/core"
	"commsched/internal/distance"
	"commsched/internal/experiments"
	"commsched/internal/mapping"
	"commsched/internal/metatask"
	"commsched/internal/procsched"
	"commsched/internal/routing"
	"commsched/internal/search"
	"commsched/internal/simnet"
	"commsched/internal/traffic"
)

// benchScale keeps the sweep shape of the paper (9 points) with shorter
// measurement windows.
func benchScale() experiments.Scale {
	return experiments.Scale{
		WarmupCycles: 800, MeasureCycles: 3000,
		RandomMappings: 5, SweepPoints: 9, MaxRate: 0.45,
	}
}

// BenchmarkFig1TabuTrace regenerates Figure 1: the value of F at each
// iteration of the Tabu search on the 16-switch network, across the ten
// random restarts.
func BenchmarkFig1TabuTrace(b *testing.B) {
	var r *experiments.Fig1Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig1()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.BestF, "bestF")
	b.ReportMetric(float64(len(r.Trace)), "trace-points")
	b.ReportMetric(float64(r.RestartsReachingBest), "restarts-reaching-min")
}

// BenchmarkFig2Partition16 regenerates Figure 2: the 4-cluster partition
// for the 16-switch network and the Cc gap to random mappings.
func BenchmarkFig2Partition16(b *testing.B) {
	var r *experiments.PartitionResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig2(9)
		if err != nil {
			b.Fatal(err)
		}
	}
	bestRandom := 0.0
	for _, m := range r.Randoms {
		if m.Cc > bestRandom {
			bestRandom = m.Cc
		}
	}
	b.ReportMetric(r.OP.Cc, "Cc-OP")
	b.ReportMetric(bestRandom, "Cc-best-random")
}

// BenchmarkFig3Sim16 regenerates Figure 3: latency-vs-traffic for the OP
// and random mappings on the 16-switch network. The paper reports the OP
// throughput ≈85% above the random mappings'.
func BenchmarkFig3Sim16(b *testing.B) {
	var r *experiments.SimResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig3(benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.OP.Throughput, "throughput-OP")
	b.ReportMetric(r.ThroughputGain, "gain-vs-best-random")
}

// BenchmarkFig4Partition24 regenerates Figure 4: the partition of the
// specially designed 24-switch rings network; the technique must identify
// the rings (identified == 1).
func BenchmarkFig4Partition24(b *testing.B) {
	var r *experiments.PartitionResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig4(3)
		if err != nil {
			b.Fatal(err)
		}
	}
	identified := 0.0
	if r.MatchesGroundTruth {
		identified = 1
	}
	b.ReportMetric(identified, "rings-identified")
	b.ReportMetric(r.OP.Cc, "Cc-OP")
}

// BenchmarkFig5Sim24 regenerates Figure 5: the simulation on the rings
// network, where the paper reports a ≈5x throughput gain.
func BenchmarkFig5Sim24(b *testing.B) {
	var r *experiments.SimResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig5(benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.OP.Throughput, "throughput-OP")
	b.ReportMetric(r.ThroughputGain, "gain-vs-best-random")
}

// BenchmarkFig6Correlation regenerates Figure 6: the Pearson correlation
// of Cc with accepted traffic at the lowest and highest load points (the
// paper reports ≈0.85 at low load and ≈0.75 in saturation).
func BenchmarkFig6Correlation(b *testing.B) {
	var r *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		sim, err := experiments.Fig3(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		r, err = experiments.CorrelationFromSim(sim)
		if err != nil {
			b.Fatal(err)
		}
	}
	lowR, _ := r.PerPoint[0].Best()
	satR, _ := r.PerPoint[len(r.PerPoint)-1].Best()
	b.ReportMetric(lowR, "r-low-load")
	b.ReportMetric(satR, "r-saturation")
}

// BenchmarkClaimTabuVsExhaustive checks the paper's optimality claim on a
// 12-switch instance (small enough to enumerate on every iteration).
func BenchmarkClaimTabuVsExhaustive(b *testing.B) {
	var r *experiments.OptimalityResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.TabuVsExhaustive(12, 500)
		if err != nil {
			b.Fatal(err)
		}
	}
	match := 0.0
	if r.Match {
		match = 1
	}
	b.ReportMetric(match, "tabu-optimal")
	b.ReportMetric(float64(r.ExhaustiveEvals)/float64(r.TabuEvals), "exhaustive/tabu-cost")
}

// BenchmarkClaimHeuristics compares Tabu against SA, GA, GSA, greedy, and
// random sampling on the canonical 16-switch instance.
func BenchmarkClaimHeuristics(b *testing.B) {
	var r *experiments.HeuristicComparison
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.CompareHeuristics(16, 600)
		if err != nil {
			b.Fatal(err)
		}
	}
	best := 0.0
	if r.TabuAtLeastAsGood {
		best = 1
	}
	b.ReportMetric(best, "tabu-at-least-as-good")
}

// BenchmarkClaimMultiNetCorrelation checks the ">70% correlation on other
// networks" claim across 16/20/24-switch instances.
func BenchmarkClaimMultiNetCorrelation(b *testing.B) {
	sc := benchScale()
	var r *experiments.MultiNetCorrelation
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.CorrelationAcrossNetworks([]int{16, 20, 24}, sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	minR := 1.0
	for i := range r.Sizes {
		if r.LowLoadR[i] < minR {
			minR = r.LowLoadR[i]
		}
		if r.SaturationR[i] < minR {
			minR = r.SaturationR[i]
		}
	}
	b.ReportMetric(minR, "min-correlation")
}

// --- Ablation benchmarks (DESIGN.md §5) ---

// BenchmarkAblationDeltaVsFull measures the incremental swap evaluation
// against full recomputation — the hot-path design choice every searcher
// relies on.
func BenchmarkAblationDeltaVsFull(b *testing.B) {
	net, err := experiments.Network16()
	if err != nil {
		b.Fatal(err)
	}
	sys, err := core.NewSystem(net, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	e := sys.Evaluator()
	p, err := mapping.Random(16, 4, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = e.SwapDelta(p, i%16, (i+5)%16)
		}
	})
	b.Run("full-recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			u, v := i%16, (i+5)%16
			p.Swap(u, v)
			_ = e.IntraSum(p)
			p.Swap(u, v)
		}
	})
}

// BenchmarkAblationHopVsResistance compares scheduling quality when the
// search is driven by plain hop counts instead of equivalent resistance:
// it reports the Cc (measured on the *resistance* table for both) so the
// metrics are comparable.
func BenchmarkAblationHopVsResistance(b *testing.B) {
	net, err := experiments.Network16()
	if err != nil {
		b.Fatal(err)
	}
	resSys, err := core.NewSystem(net, core.Options{Metric: core.MetricResistance})
	if err != nil {
		b.Fatal(err)
	}
	hopSys, err := core.NewSystem(net, core.Options{Metric: core.MetricHops})
	if err != nil {
		b.Fatal(err)
	}
	var ccRes, ccHop float64
	for i := 0; i < b.N; i++ {
		sr, err := resSys.Schedule(nil, core.ScheduleOptions{Clusters: 4, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		sh, err := hopSys.Schedule(nil, core.ScheduleOptions{Clusters: 4, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		ccRes = sr.Quality.Cc
		// Score the hop-driven mapping with the resistance-based Cc.
		hq, err := resSys.Evaluate(sh.Partition)
		if err != nil {
			b.Fatal(err)
		}
		ccHop = hq.Cc
	}
	b.ReportMetric(ccRes, "Cc-resistance-driven")
	b.ReportMetric(ccHop, "Cc-hop-driven")
}

// BenchmarkAblationRoutingSupplier compares distance tables built from
// up*/down* legal paths against unrestricted shortest paths.
func BenchmarkAblationRoutingSupplier(b *testing.B) {
	net, err := experiments.Network16()
	if err != nil {
		b.Fatal(err)
	}
	ud, err := routing.NewUpDown(net, -1)
	if err != nil {
		b.Fatal(err)
	}
	sp := routing.NewShortestPath(net)
	var diff float64
	for i := 0; i < b.N; i++ {
		tu, err := distance.Compute(net, ud)
		if err != nil {
			b.Fatal(err)
		}
		ts, err := distance.Compute(net, sp)
		if err != nil {
			b.Fatal(err)
		}
		// Mean absolute difference: how much routing restriction distorts
		// the communication-cost model.
		sum, n := 0.0, 0
		for x := 0; x < 16; x++ {
			for y := x + 1; y < 16; y++ {
				d := tu.At(x, y) - ts.At(x, y)
				if d < 0 {
					d = -d
				}
				sum += d
				n++
			}
		}
		diff = sum / float64(n)
	}
	b.ReportMetric(diff, "mean-|updown-shortest|")
}

// BenchmarkAblationVirtualChannels sweeps the VC count — a simulator
// design parameter the paper's methodology (Duato) emphasizes.
func BenchmarkAblationVirtualChannels(b *testing.B) {
	net, err := experiments.Network16()
	if err != nil {
		b.Fatal(err)
	}
	sys, err := core.NewSystem(net, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	sched, err := sys.Schedule(nil, core.ScheduleOptions{Clusters: 4, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	for _, vcs := range []int{1, 2, 4} {
		vcs := vcs
		b.Run(map[int]string{1: "vc1", 2: "vc2", 4: "vc4"}[vcs], func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				m, err := sys.Simulate(sched.Partition, simnet.Config{
					VirtualChannels: vcs, InjectionRate: 0.35,
					WarmupCycles: 800, MeasureCycles: 3000, Seed: 7,
				})
				if err != nil {
					b.Fatal(err)
				}
				acc = m.AcceptedTraffic
			}
			b.ReportMetric(acc, "accepted-traffic")
		})
	}
}

// BenchmarkDistanceTable times the substrate characterization step alone
// (table construction dominates system setup).
func BenchmarkDistanceTable(b *testing.B) {
	net, err := experiments.Network16()
	if err != nil {
		b.Fatal(err)
	}
	ud, err := routing.NewUpDown(net, -1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := distance.Compute(net, ud); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTabuSearch16 times one full Tabu run (10 restarts) on the
// canonical instance.
func BenchmarkTabuSearch16(b *testing.B) {
	net, err := experiments.Network16()
	if err != nil {
		b.Fatal(err)
	}
	sys, err := core.NewSystem(net, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	spec, err := search.BalancedSpec(16, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := search.NewTabu().Search(nil, sys.Evaluator(), spec, rand.New(rand.NewSource(42))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorCycles times raw simulation speed in cycles/op on the
// 16-switch network at moderate load. The op includes simulator
// construction; see BenchmarkSimulatorSteadyState for the bare cycle loop.
func BenchmarkSimulatorCycles(b *testing.B) {
	net, err := experiments.Network16()
	if err != nil {
		b.Fatal(err)
	}
	sys, err := core.NewSystem(net, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	p, err := sys.RandomMapping(4, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := simnet.Config{
		InjectionRate: 0.2, WarmupCycles: 0, MeasureCycles: 2000, Seed: 3,
	}
	var flits int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := sys.Simulate(p, cfg)
		if err != nil {
			b.Fatal(err)
		}
		flits += m.DeliveredFlits
	}
	b.SetBytes(0)
	b.ReportMetric(float64(cfg.WarmupCycles+cfg.MeasureCycles), "cycles/op")
	b.ReportMetric(float64(flits)/float64(b.N), "flits/op")
}

// BenchmarkSimulatorSteadyState times the simulation loop alone: the
// simulator is built and warmed outside the timer, so the measured region
// is the allocation-free steady state (expect ~0 allocs/op).
func BenchmarkSimulatorSteadyState(b *testing.B) {
	net, err := experiments.Network16()
	if err != nil {
		b.Fatal(err)
	}
	rt, err := routing.NewUpDown(net, -1)
	if err != nil {
		b.Fatal(err)
	}
	pattern, err := traffic.NewUniform(net.Hosts())
	if err != nil {
		b.Fatal(err)
	}
	// The rate must sit below uniform-traffic saturation: past saturation
	// the source queues (and the message arena) grow without bound, which
	// is real allocation, not overhead.
	sim, err := simnet.New(net, rt, pattern, simnet.Config{
		InjectionRate: 0.05, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	const chunk = 2000
	sim.Advance(20 * chunk) // warm: populate buffers and the message arena
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Advance(chunk)
	}
	b.ReportMetric(chunk, "cycles/op")
}

// BenchmarkExtensionUnequalClusters exercises the future-work feature:
// clusters of unequal size (unequal communication requirements), checking
// that the scheduler still beats random placement.
func BenchmarkExtensionUnequalClusters(b *testing.B) {
	net, err := experiments.Network16()
	if err != nil {
		b.Fatal(err)
	}
	sys, err := core.NewSystem(net, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	sizes := []int{2, 4, 4, 6}
	var gain float64
	for i := 0; i < b.N; i++ {
		sched, err := sys.Schedule(nil, core.ScheduleOptions{Sizes: sizes, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		rnd, err := mapping.RandomSizes(sizes, rand.New(rand.NewSource(100)))
		if err != nil {
			b.Fatal(err)
		}
		rq, err := sys.Evaluate(rnd)
		if err != nil {
			b.Fatal(err)
		}
		gain = sched.Quality.Cc / rq.Cc
	}
	b.ReportMetric(gain, "Cc-gain-vs-random")
}

// BenchmarkExtensionMixedTraffic exercises imperfectly clustered traffic
// (80% intra-cluster): the scheduled mapping should still outperform a
// random one, by a smaller margin.
func BenchmarkExtensionMixedTraffic(b *testing.B) {
	net, err := experiments.Network16()
	if err != nil {
		b.Fatal(err)
	}
	sys, err := core.NewSystem(net, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	sched, err := sys.Schedule(nil, core.ScheduleOptions{Clusters: 4, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	rnd, err := sys.RandomMapping(4, 100)
	if err != nil {
		b.Fatal(err)
	}
	run := func(p *mapping.Partition) float64 {
		pat, err := mixedPattern(sys, p, 0.8)
		if err != nil {
			b.Fatal(err)
		}
		m, err := sys.SimulatePattern(pat, simnet.Config{
			InjectionRate: 0.3, WarmupCycles: 800, MeasureCycles: 3000, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		return m.AcceptedTraffic
	}
	var gain float64
	for i := 0; i < b.N; i++ {
		gain = run(sched.Partition) / run(rnd)
	}
	b.ReportMetric(gain, "throughput-gain-80pct-intra")
}

// BenchmarkMetaTaskHeuristics reproduces the Braun-style heuristic
// ranking the paper's background cites: Min-min's makespan relative to
// OLB's on random inconsistent ETC matrices (reported as the OLB/Min-min
// ratio; > 1 means Min-min wins).
func BenchmarkMetaTaskHeuristics(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(7))
		etc, err := metatask.GenerateETC(100, 8, 20, 10, metatask.Inconsistent, rng)
		if err != nil {
			b.Fatal(err)
		}
		olb := (metatask.OLB{}).Map(etc).Makespan
		minmin := (metatask.MinMin{}).Map(etc).Makespan
		ratio = olb / minmin
	}
	b.ReportMetric(ratio, "olb/minmin-makespan")
}

// BenchmarkExtensionProcessLevel exercises the fully generalized
// future-work scheduler: process-level placement with 2 slots per
// processor and non-multiple cluster sizes, reporting the objective gain
// over random placement.
func BenchmarkExtensionProcessLevel(b *testing.B) {
	net, err := experiments.Network16()
	if err != nil {
		b.Fatal(err)
	}
	ud, err := routing.NewUpDown(net, -1)
	if err != nil {
		b.Fatal(err)
	}
	tab, err := distance.Compute(net, ud)
	if err != nil {
		b.Fatal(err)
	}
	var clusterOf []int
	for c, size := range []int{23, 31, 42} {
		for i := 0; i < size; i++ {
			clusterOf = append(clusterOf, c)
		}
	}
	pr, err := procsched.NewProblem(net, tab, clusterOf, 2)
	if err != nil {
		b.Fatal(err)
	}
	var gain float64
	for i := 0; i < b.N; i++ {
		res := procsched.Tabu(pr, procsched.TabuOptions{Restarts: 3, MaxIterations: 30},
			rand.New(rand.NewSource(1)))
		rnd := pr.Cost(pr.RandomAssignment(rand.New(rand.NewSource(2))))
		gain = rnd / res.BestCost
	}
	b.ReportMetric(gain, "objective-gain-vs-random")
}

func mixedPattern(sys *core.System, p *mapping.Partition, intraFrac float64) (traffic.Pattern, error) {
	intra, err := sys.IntraClusterPattern(p)
	if err != nil {
		return nil, err
	}
	uni, err := traffic.NewUniform(sys.Network().Hosts())
	if err != nil {
		return nil, err
	}
	return traffic.NewMixed(intra, uni, intraFrac)
}
