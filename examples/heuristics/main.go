// Heuristics: the searcher shoot-out behind the paper's Section 2 claim —
// "with [Tabu search] we obtained the best results … the same or better
// clustering coefficients than other methods with higher computational
// cost."
//
// It runs Tabu, steepest-descent greedy, Simulated Annealing, a Genetic
// Algorithm, Genetic Simulated Annealing, and a random-sampling baseline
// on the same 16-switch instance, and (because 16 switches is small
// enough) checks them against the exhaustive optimum.
//
// Run with: go run ./examples/heuristics
package main

import (
	"fmt"
	"log"
	"math/rand"

	"commsched/internal/core"
	"commsched/internal/search"
	"commsched/internal/topology"
)

func main() {
	net, err := topology.RandomIrregular(16, 3, rand.New(rand.NewSource(2000)), topology.Config{})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(net, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	spec, err := search.BalancedSpec(16, 4)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("exhaustive enumeration of all 16!/(4!^4 4!) = 2,627,625 partitions…")
	opt, err := search.NewExhaustive().Search(nil, sys.Evaluator(), spec, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("global optimum: F_G = %.6f  %s\n\n", opt.BestF, opt.Best)

	searchers := []search.Searcher{
		search.NewTabu(),
		search.NewGreedy(),
		search.NewAnneal(),
		search.NewGenetic(),
		search.NewGSA(),
		search.NewAStar(), // anytime: falls back to greedy completion at its node budget
		&search.RandomSample{Samples: 1000},
	}
	fmt.Printf("%-28s %-12s %-14s %s\n", "heuristic", "best F_G", "evaluations", "optimal?")
	for _, s := range searchers {
		res, err := s.Search(nil, sys.Evaluator(), spec, rand.New(rand.NewSource(42)))
		if err != nil {
			log.Fatal(err)
		}
		mark := ""
		if res.BestF <= opt.BestF+1e-9 {
			mark = "yes"
		}
		fmt.Printf("%-28s %-12.6f %-14d %s\n", s.Name(), res.BestF, res.Evaluations, mark)
	}
}
