// Multiprogram: the paper's future-work scenario with its simplifying
// assumptions removed — several processes per processor and logical
// clusters that are not multiples of a switch.
//
// Three applications of 11, 17, and 20 processes run on an 8-switch NOW
// (32 workstations, 2 process slots each). The process-level Tabu search
// places individual processes; co-located processes communicate through
// shared memory, so good placements both *cluster* (same application near
// itself) and *consolidate* (same application on the same host). The
// example compares the scheduled placement against a random one on the
// objective, the fraction of communication that hits the network, and
// simulated throughput.
//
// Run with: go run ./examples/multiprogram
package main

import (
	"fmt"
	"log"
	"math/rand"

	"commsched/internal/distance"
	"commsched/internal/procsched"
	"commsched/internal/routing"
	"commsched/internal/simnet"
	"commsched/internal/topology"
	"commsched/internal/traffic"
)

func main() {
	net, err := topology.RandomIrregular(8, 3, rand.New(rand.NewSource(77)), topology.Config{})
	if err != nil {
		log.Fatal(err)
	}
	rt, err := routing.NewUpDown(net, -1)
	if err != nil {
		log.Fatal(err)
	}
	tab, err := distance.Compute(net, rt)
	if err != nil {
		log.Fatal(err)
	}

	// Applications of 11, 17, and 20 processes — deliberately not
	// multiples of anything.
	var clusterOf []int
	for c, size := range []int{11, 17, 20} {
		for i := 0; i < size; i++ {
			clusterOf = append(clusterOf, c)
		}
	}
	pr, err := procsched.NewProblem(net, tab, clusterOf, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NOW: %d switches, %d workstations x 2 slots; %d processes in 3 applications (11/17/20)\n\n",
		net.Switches(), net.Hosts(), pr.Processes())

	scheduled := procsched.Tabu(pr, procsched.TabuOptions{}, rand.New(rand.NewSource(1)))
	random := pr.RandomAssignment(rand.New(rand.NewSource(2)))

	report := func(label string, hostOf []int, cost float64) *traffic.ProcessIntra {
		pat, err := traffic.NewProcessIntra(net.Hosts(), hostOf, clusterOf)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s objective %10.2f   remote communication %.0f%%\n",
			label, cost, pat.RemoteFraction()*100)
		return pat
	}
	schedPat := report("scheduled:", scheduled.Best.HostOf, scheduled.BestCost)
	randPat := report("random:", random.HostOf, pr.Cost(random))

	cfg := simnet.Config{WarmupCycles: 1000, MeasureCycles: 5000, Seed: 3}
	rates := simnet.LinearRates(5, 0.4)
	sweep := func(pat traffic.Pattern) float64 {
		points, err := simnet.Sweep(nil, net, rt, pat, cfg, rates)
		if err != nil {
			log.Fatal(err)
		}
		return simnet.Throughput(points)
	}
	ts, tr := sweep(schedPat), sweep(randPat)
	fmt.Printf("\nsimulated throughput: scheduled %.4f vs random %.4f flits/switch/cycle (%.2fx)\n",
		ts, tr, ts/tr)
}
