// Videoserver: the paper's motivating workload — applications with huge
// bandwidth requirements (video-on-demand / multimedia) on a NOW where the
// interconnect, not the CPUs, is the bottleneck.
//
// Four video-streaming applications, each a group of 24 processes
// (servers + clients of one VoD service), run on a 24-switch NOW. Stream
// traffic is intra-application. The example schedules the four
// applications with the communication-aware technique and shows the
// saturation throughput against placing them by naive first-fit (a
// computation-only scheduler that ignores the network), sweeping the
// offered load like the paper's S1…S9 ladder.
//
// Run with: go run ./examples/videoserver
package main

import (
	"fmt"
	"log"
	"math/rand"

	"commsched/internal/core"
	"commsched/internal/mapping"
	"commsched/internal/simnet"
	"commsched/internal/topology"
)

func main() {
	// A 24-switch irregular NOW: 96 workstations for 4 x 24 processes.
	net, err := topology.RandomIrregular(24, 3, rand.New(rand.NewSource(9)), topology.Config{})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(net, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NOW: %d switches / %d workstations; 4 video services of %d processes each\n\n",
		net.Switches(), net.Hosts(), net.Hosts()/4)

	// Communication-aware placement.
	sched, err := sys.Schedule(nil, core.ScheduleOptions{Clusters: 4, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	// Computation-only placement: first-fit by switch index — what a
	// scheduler that balances CPUs but ignores the network would do when
	// the services arrived interleaved.
	assign := make([]int, net.Switches())
	for s := range assign {
		assign[s] = s % 4 // round-robin across services
	}
	naive, err := mapping.New(assign, 4)
	if err != nil {
		log.Fatal(err)
	}

	nq, err := sys.Evaluate(naive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("communication-aware: %s  (Cc %.2f)\n", sched.Partition, sched.Quality.Cc)
	fmt.Printf("round-robin:         %s  (Cc %.2f)\n\n", naive, nq.Cc)

	// Load sweep: streaming load rises as more clients tune in.
	cfg := simnet.Config{WarmupCycles: 1500, MeasureCycles: 6000, Seed: 5}
	rates := simnet.LinearRates(6, 0.42)
	aware, err := sys.SimulateSweep(nil, sched.Partition, cfg, rates)
	if err != nil {
		log.Fatal(err)
	}
	rr, err := sys.SimulateSweep(nil, naive, cfg, rates)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("load      aware: accepted/latency     round-robin: accepted/latency")
	for i := range rates {
		a, b := aware[i].Metrics, rr[i].Metrics
		fmt.Printf("%.3f     %.4f / %6.1f cyc          %.4f / %6.1f cyc\n",
			rates[i], a.AcceptedTraffic, a.AvgLatency, b.AcceptedTraffic, b.AvgLatency)
	}
	gain := simnet.Throughput(aware) / simnet.Throughput(rr)
	fmt.Printf("\nstreaming throughput gain from communication-aware scheduling: %.2fx\n", gain)
}
