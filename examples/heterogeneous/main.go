// Heterogeneous: the paper's Section 1 scenario end to end — a NOW of
// workstations with different computing power running a mixed workload,
// where "the scheduler would choose either a computation-aware or a
// communication-aware task scheduling strategy depending on the kind of
// requirements that leads to the system performance bottleneck."
//
// Two workload mixes run on the same 12-switch machine (half the
// workstations are 4x faster): a compute-heavy batch mix and a
// bandwidth-heavy streaming mix. The strategy classifies each and
// dispatches to the matching scheduler family.
//
// Run with: go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"math/rand"

	"commsched/internal/distance"
	"commsched/internal/procsched"
	"commsched/internal/routing"
	"commsched/internal/strategy"
	"commsched/internal/topology"
)

func main() {
	net, err := topology.RandomIrregular(12, 3, rand.New(rand.NewSource(21)), topology.Config{})
	if err != nil {
		log.Fatal(err)
	}
	rt, err := routing.NewUpDown(net, -1)
	if err != nil {
		log.Fatal(err)
	}
	tab, err := distance.Compute(net, rt)
	if err != nil {
		log.Fatal(err)
	}
	speed := make([]float64, net.Hosts())
	for h := range speed {
		if h%2 == 0 {
			speed[h] = 4 // the newer half of the NOW
		} else {
			speed[h] = 1
		}
	}
	sys, err := strategy.NewSystem(net, rt, tab, speed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heterogeneous NOW: %d switches, %d workstations (half 4x faster)\n\n",
		net.Switches(), net.Hosts())

	mixes := map[string][]strategy.Application{
		"batch simulation mix": {
			{Name: "cfd", Processes: 16, CPUDemand: 8, CommIntensity: 0.005},
			{Name: "render", Processes: 16, CPUDemand: 6, CommIntensity: 0.002},
		},
		"video streaming mix": {
			{Name: "vod-a", Processes: 16, CPUDemand: 0.05, CommIntensity: 0.4},
			{Name: "vod-b", Processes: 16, CPUDemand: 0.05, CommIntensity: 0.4},
		},
	}
	for label, apps := range mixes {
		pl, err := sys.Schedule(apps, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", label)
		fmt.Printf("  cpu utilization ≈ %.2f, network utilization ≈ %.2f → %s\n",
			pl.Analysis.CPUUtilization, pl.Analysis.NetworkUtilization, pl.Analysis.Bottleneck)
		fmt.Printf("  dispatched to: %s\n", pl.Scheduler)
		if pl.Analysis.Bottleneck == strategy.NetworkBound {
			pr, err := procsched.NewProblem(net, tab, pl.ClusterOf, 1)
			if err != nil {
				log.Fatal(err)
			}
			a, err := pr.NewAssignment(pl.HostOf)
			if err != nil {
				log.Fatal(err)
			}
			rnd := pr.RandomAssignment(rand.New(rand.NewSource(3)))
			fmt.Printf("  communication objective: %.1f (random placement: %.1f)\n",
				pr.Cost(a), pr.Cost(rnd))
		} else {
			fast, total := 0, 0
			for _, h := range pl.HostOf {
				if speed[h] == 4 {
					fast++
				}
				total++
			}
			fmt.Printf("  processes on fast workstations: %d of %d\n", fast, total)
		}
		fmt.Println()
	}
}
