// Ringclusters: the paper's Figure 4/5 scenario — a specially designed
// 24-switch network of four interconnected rings of six switches. The
// scheduling technique must *discover* the rings from the table of
// equivalent distances alone (it never sees the construction), and the
// resulting mapping multiplies the achievable throughput.
//
// Run with: go run ./examples/ringclusters
package main

import (
	"fmt"
	"log"

	"commsched/internal/core"
	"commsched/internal/mapping"
	"commsched/internal/simnet"
	"commsched/internal/topology"
)

func main() {
	net, err := topology.InterconnectedRings(4, 6, 1, topology.Config{})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(net, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("designed network: %s (%d switches, %d links)\n\n", net.Name(), net.Switches(), net.NumLinks())

	// The ground truth the technique should rediscover.
	truth := make([]int, net.Switches())
	for r, ring := range topology.RingClusters(4, 6) {
		for _, s := range ring {
			truth[s] = r
		}
	}
	truthPart, err := mapping.New(truth, 4)
	if err != nil {
		log.Fatal(err)
	}

	sched, err := sys.Schedule(nil, core.ScheduleOptions{Clusters: 4, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("designed rings:   %s\n", truthPart)
	fmt.Printf("tabu discovered:  %s\n", sched.Partition)
	if sched.Partition.Canonical().Equal(truthPart.Canonical()) {
		fmt.Println("the scheduling technique identified the rings exactly (paper, Figure 4).")
	} else {
		fmt.Println("WARNING: partition differs from the designed rings.")
	}
	fmt.Printf("clustering coefficient: %.2f\n\n", sched.Quality.Cc)

	// Figure 5's point: on a well-clustered topology the gain is large.
	random, err := sys.RandomMapping(4, 100)
	if err != nil {
		log.Fatal(err)
	}
	cfg := simnet.Config{WarmupCycles: 1500, MeasureCycles: 6000, Seed: 5}
	rates := simnet.LinearRates(6, 0.45)
	op, err := sys.SimulateSweep(nil, sched.Partition, cfg, rates)
	if err != nil {
		log.Fatal(err)
	}
	rd, err := sys.SimulateSweep(nil, random, cfg, rates)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("throughput: scheduled %.4f vs random %.4f flits/switch/cycle (%.1fx)\n",
		simnet.Throughput(op), simnet.Throughput(rd),
		simnet.Throughput(op)/simnet.Throughput(rd))
}
