// Quickstart: the complete pipeline of the paper in a few calls.
//
// It generates a random irregular NOW (16 switches, 64 workstations),
// characterizes it with the table of equivalent distances under up*/down*
// routing, runs the communication-aware Tabu scheduler for 4 parallel
// applications (logical clusters), and compares the scheduled mapping
// against a random mapping both by clustering coefficient and by actual
// simulated network performance.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"commsched/internal/core"
	"commsched/internal/simnet"
	"commsched/internal/topology"
)

func main() {
	// 1. A heterogeneous NOW: 16 eight-port switches, 4 workstations each.
	net, err := topology.RandomIrregular(16, 3, rand.New(rand.NewSource(1)), topology.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d switches, %d workstations, %d links\n",
		net.Switches(), net.Hosts(), net.NumLinks())

	// 2. Characterize it: up*/down* routing + table of equivalent distances.
	sys, err := core.NewSystem(net, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("up*/down* root: switch %d\n", sys.Routing().Root())

	// 3. Schedule 4 parallel applications communication-aware.
	sched, err := sys.Schedule(nil, core.ScheduleOptions{Clusters: 4, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscheduled mapping: %s\n", sched.Partition)
	fmt.Printf("clustering coefficient Cc = %.3f (F_G %.3f, D_G %.3f)\n",
		sched.Quality.Cc, sched.Quality.FG, sched.Quality.DG)

	// 4. A random mapping for comparison.
	random, err := sys.RandomMapping(4, 7)
	if err != nil {
		log.Fatal(err)
	}
	rq, err := sys.Evaluate(random)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random mapping:    %s\nclustering coefficient Cc = %.3f\n",
		random, rq.Cc)

	// 5. Does Cc predict real performance? Simulate both at the same load.
	cfg := simnet.Config{InjectionRate: 0.25, WarmupCycles: 1000, MeasureCycles: 5000, Seed: 3}
	opM, err := sys.Simulate(sched.Partition, cfg)
	if err != nil {
		log.Fatal(err)
	}
	rdM, err := sys.Simulate(random, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated at %.2f flits/cycle/host:\n", cfg.InjectionRate)
	fmt.Printf("  scheduled: %s\n", opM.String())
	fmt.Printf("  random:    %s\n", rdM.String())
	if opM.AcceptedTraffic > rdM.AcceptedTraffic {
		fmt.Println("\nthe communication-aware mapping delivers more traffic, as the paper predicts.")
	}
}
