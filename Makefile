# commsched — reproduction of Orduña et al., ICPP 2000.

GO ?= go

.PHONY: all build test race bench bench-json bench-perf bench-diff figs figs-quick cover vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# One pass over every benchmark (repro suite + obs overhead probes),
# archived as machine-readable JSON — a regression record, no thresholds.
bench-json:
	$(GO) test -bench=. -benchmem -benchtime=1x -run '^$$' . ./internal/obs > bench.out
	$(GO) run ./cmd/benchjson -o BENCH_obs.json bench.out
	rm -f bench.out

# Refresh the post-flat-core baseline (the bench-diff reference).
bench-perf:
	$(GO) test -bench=. -benchmem -benchtime=1x -run '^$$' . ./internal/obs > bench.out
	$(GO) run ./cmd/benchjson -o BENCH_perf.json bench.out
	rm -f bench.out

# Threshold gate: re-run the benchmarks and fail when ns/op or allocs/op
# regress beyond BENCH_THRESHOLD against the committed baseline. The
# single-pass runs are noisy, so the default tolerance is generous; on a
# failure the fresh report is left in bench_new.json for inspection.
#
# The tight gate is restricted to the repro-suite benchmarks (root
# package, '^commsched\.'); the same fresh report is then diffed against
# BENCH_obs.json, restricted to the observability-overhead probes
# (internal/obs), so an emission-path regression fails the gate exactly
# like a simulator regression. The obs probes are nanosecond-scale and a
# 1x pass times a single iteration, so their ns/op tolerance is wider;
# allocs/op (the real overhead signal — the disabled path must stay at
# zero) is gated by the same number but is noise-free.
BENCH_BASE ?= BENCH_perf.json
BENCH_OBS_BASE ?= BENCH_obs.json
BENCH_THRESHOLD ?= 0.5
BENCH_OBS_THRESHOLD ?= 2.0
bench-diff:
	$(GO) test -bench=. -benchmem -benchtime=1x -run '^$$' . ./internal/obs > bench.out
	$(GO) run ./cmd/benchjson -o bench_new.json bench.out
	rm -f bench.out
	$(GO) run ./cmd/benchjson compare -threshold $(BENCH_THRESHOLD) -filter '^commsched\.' $(BENCH_BASE) bench_new.json
	$(GO) run ./cmd/benchjson compare -threshold $(BENCH_OBS_THRESHOLD) -filter 'internal/obs' $(BENCH_OBS_BASE) bench_new.json
	rm -f bench_new.json

figs:
	$(GO) run ./cmd/paperfigs

figs-quick:
	$(GO) run ./cmd/paperfigs -quick

cover:
	$(GO) test -cover ./internal/...

clean:
	$(GO) clean ./...
