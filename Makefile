# commsched — reproduction of Orduña et al., ICPP 2000.

GO ?= go

.PHONY: all build test race bench figs figs-quick cover vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

figs:
	$(GO) run ./cmd/paperfigs

figs-quick:
	$(GO) run ./cmd/paperfigs -quick

cover:
	$(GO) test -cover ./internal/...

clean:
	$(GO) clean ./...
