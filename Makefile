# commsched — reproduction of Orduña et al., ICPP 2000.

GO ?= go

.PHONY: all build test race bench bench-json bench-perf bench-diff figs figs-quick cover vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# One pass over every benchmark (repro suite + obs overhead probes),
# archived as machine-readable JSON — a regression record, no thresholds.
bench-json:
	$(GO) test -bench=. -benchmem -benchtime=1x -run '^$$' . ./internal/obs > bench.out
	$(GO) run ./cmd/benchjson -o BENCH_obs.json bench.out
	rm -f bench.out

# Refresh the post-flat-core baseline (the bench-diff reference).
bench-perf:
	$(GO) test -bench=. -benchmem -benchtime=1x -run '^$$' . ./internal/obs > bench.out
	$(GO) run ./cmd/benchjson -o BENCH_perf.json bench.out
	rm -f bench.out

# Threshold gate: re-run the benchmarks and fail when ns/op or allocs/op
# regress beyond BENCH_THRESHOLD against the committed baseline. The
# single-pass runs are noisy, so the default tolerance is generous; on a
# failure the fresh report is left in bench_new.json for inspection.
BENCH_BASE ?= BENCH_perf.json
BENCH_THRESHOLD ?= 0.5
bench-diff:
	$(GO) test -bench=. -benchmem -benchtime=1x -run '^$$' . ./internal/obs > bench.out
	$(GO) run ./cmd/benchjson -o bench_new.json bench.out
	rm -f bench.out
	$(GO) run ./cmd/benchjson compare -threshold $(BENCH_THRESHOLD) $(BENCH_BASE) bench_new.json
	rm -f bench_new.json

figs:
	$(GO) run ./cmd/paperfigs

figs-quick:
	$(GO) run ./cmd/paperfigs -quick

cover:
	$(GO) test -cover ./internal/...

clean:
	$(GO) clean ./...
