# commsched — reproduction of Orduña et al., ICPP 2000.

GO ?= go

.PHONY: all build test race bench bench-json figs figs-quick cover vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# One pass over every benchmark (repro suite + obs overhead probes),
# archived as machine-readable JSON — a regression record, no thresholds.
bench-json:
	$(GO) test -bench=. -benchmem -benchtime=1x -run '^$$' . ./internal/obs > bench.out
	$(GO) run ./cmd/benchjson -o BENCH_obs.json bench.out
	rm -f bench.out

figs:
	$(GO) run ./cmd/paperfigs

figs-quick:
	$(GO) run ./cmd/paperfigs -quick

cover:
	$(GO) test -cover ./internal/...

clean:
	$(GO) clean ./...
