module commsched

go 1.22
